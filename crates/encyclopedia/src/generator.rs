//! Synthetic encyclopedia generator — the CN-DBpedia stand-in.
//!
//! The real evaluation corpus (CN-DBpedia dump of 2017-05-20: 15.99 M
//! entities, 132 M triples) is unavailable, so this module generates a
//! corpus with the same *structure* and the same *noise classes* the paper
//! describes, at configurable scale and with known ground truth:
//!
//! * pages with bracket / abstract / infobox / tags (Figure 1 anatomy);
//! * bracket noun compounds with organization, country and rank modifiers
//!   (蚂蚁金服首席战略官-style — Figure 3);
//! * tags mixing correct hypernyms with thematic topics (音乐), named
//!   entities and plainly wrong concepts — the noise §III's verification
//!   strategies remove;
//! * infobox triples with 12 genuinely isA-bearing predicates (职业, 类型 …)
//!   buried among ~350 junk predicates — reproducing the paper's
//!   341-candidate → 12-selected predicate-discovery setting;
//! * abstracts whose first sentence usually mentions the concept, the
//!   signal the CopyNet abstract generator learns to copy;
//! * name collisions that force disambiguated senses (men2ent workload).

use crate::gold::GoldLabels;
use crate::names;
use crate::ontology::{ConceptSpec, Domain, Ontology};
use crate::page::{InfoboxTriple, Page};
use cnp_text::pos::PosTag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Country-level modifiers usable in brackets and abstracts.
pub static COUNTRY_MODS: [&str; 6] = ["中国", "美国", "日本", "韩国", "英国", "法国"];
/// Region/city modifiers.
pub static CITY_MODS: [&str; 4] = ["香港", "台湾", "北京", "上海"];

/// Junk-predicate name material: PFX × MID ≈ 348 distinct predicates, the
/// haystack for predicate discovery (paper: 341 candidates).
static JUNK_PFX: [&str; 12] = [
    "主要", "相关", "其他", "历任", "曾用", "附属", "特色", "早期", "后期", "官方", "国际", "地方",
];
static JUNK_MID: [&str; 29] = [
    "奖项", "称号", "头衔", "标识", "领域", "方向", "项目", "条目", "栏目", "板块", "分区", "系列",
    "词条", "名录", "要素", "指标", "事件", "活动", "合作", "版本", "评价", "记录", "档案", "阵容",
    "口号", "代号", "别称", "绰号", "刊物",
];

/// The 12 isA-bearing predicates (what the paper's manual selection keeps).
pub static ISA_PREDICATES: [&str; 12] = [
    "职业",
    "身份",
    "职务",
    "类型",
    "体裁",
    "性质",
    "学校类别",
    "医院等级",
    "行政区类别",
    "分类",
    "类别",
    "菜系",
];

/// Generation parameters (all rates in `[0, 1]`).
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// RNG seed; equal seeds produce byte-identical corpora.
    pub seed: u64,
    /// Number of entity pages (concept pages are added on top).
    pub num_pages: usize,
    /// Probability that a page carries a thematic topic tag (音乐 …).
    pub tag_thematic_rate: f64,
    /// Probability of a named-entity tag (place/person name).
    pub tag_ne_rate: f64,
    /// Probability of a wrong concept tag.
    pub tag_wrong_concept_rate: f64,
    /// Probability that an isA-bearing infobox value is wrong.
    pub infobox_noise_rate: f64,
    /// Probability that a junk-predicate value coincides with a concept
    /// (produces spurious predicate-discovery alignments).
    pub junk_concept_value_rate: f64,
    /// Probability that the abstract omits the concept mention.
    pub abstract_omit_concept_rate: f64,
    /// Probability of reusing an existing name (forces disambiguation).
    pub ambiguous_name_rate: f64,
    /// Probability a page has a bracket (collided names always get one).
    pub bracket_rate: f64,
    /// Probability that a non-root ontology concept gets its own page.
    pub concept_page_rate: f64,
}

impl CorpusConfig {
    /// ~400 pages — doctests and unit tests.
    pub fn tiny(seed: u64) -> Self {
        CorpusConfig {
            num_pages: 400,
            ..Self::standard(seed)
        }
    }

    /// ~2 000 pages — integration tests.
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            num_pages: 2_000,
            ..Self::standard(seed)
        }
    }

    /// ~12 000 pages — the default experiment scale.
    pub fn standard(seed: u64) -> Self {
        CorpusConfig {
            seed,
            num_pages: 12_000,
            tag_thematic_rate: 0.08,
            tag_ne_rate: 0.02,
            tag_wrong_concept_rate: 0.025,
            infobox_noise_rate: 0.02,
            junk_concept_value_rate: 0.15,
            abstract_omit_concept_rate: 0.08,
            ambiguous_name_rate: 0.05,
            bracket_rate: 0.65,
            concept_page_rate: 0.9,
        }
    }

    /// ~60 000 pages — benchmark scale.
    pub fn large(seed: u64) -> Self {
        CorpusConfig {
            num_pages: 60_000,
            ..Self::standard(seed)
        }
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self::standard(42)
    }
}

/// A generated corpus: pages + ground truth + corpus-derived dictionary.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All pages (entity pages then concept pages).
    pub pages: Vec<Page>,
    /// Ground-truth labels.
    pub gold: GoldLabels,
    /// The configuration that produced this corpus.
    pub config: CorpusConfig,
    vocab_counts: HashMap<String, u64>,
}

impl Corpus {
    /// Corpus-derived dictionary entries `(word, freq, pos)`: gold concepts,
    /// modifiers, name-part words and predicates with usage frequencies —
    /// the stand-in for jieba's dictionary that the real system would use.
    pub fn dictionary(&self) -> Vec<(String, u64, PosTag)> {
        self.vocab_counts
            .iter()
            .map(|(w, &c)| (w.clone(), c.max(1), PosTag::Noun))
            .collect()
    }

    /// Pages whose name equals a gold concept (concept pages).
    pub fn num_concept_pages(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| self.gold.is_concept(&p.name))
            .count()
    }

    /// A deterministic page subset (for baselines built from smaller
    /// encyclopedias, e.g. Chinese Wikipedia vs. Baidu Baike). Gold labels
    /// and the corpus dictionary are shared with the full corpus.
    pub fn subset(&self, fraction: f64, seed: u64) -> Corpus {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let pages: Vec<Page> = self
            .pages
            .iter()
            .filter(|_| rng.gen_bool(fraction))
            .cloned()
            .collect();
        Corpus {
            pages,
            gold: self.gold.clone(),
            config: self.config.clone(),
            vocab_counts: self.vocab_counts.clone(),
        }
    }
}

/// The generator. One-shot: `CorpusGenerator::new(config).generate()`.
#[derive(Debug)]
pub struct CorpusGenerator {
    config: CorpusConfig,
}

/// Draft page before collision resolution.
struct Draft {
    page: Page,
    bracket_content: String,
    publish_bracket: bool,
    /// Correct hypernyms to record once the final key is known.
    gold_hypernyms: Vec<String>,
    /// Subconcept pairs introduced by modified concepts (首席战略官→战略官).
    gold_concept_pairs: Vec<(String, String)>,
}

impl CorpusGenerator {
    /// Creates a generator.
    pub fn new(config: CorpusConfig) -> Self {
        CorpusGenerator { config }
    }

    /// Generates the corpus.
    pub fn generate(&self) -> Corpus {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let ontology = Ontology::global();
        let mut gold = GoldLabels::new();
        let mut vocab: HashMap<String, u64> = HashMap::new();

        // Global truths: every ontology edge, transitively.
        for spec in crate::ontology::CONCEPTS {
            for anc in ontology.ancestors(spec.name) {
                gold.add_concept_pair(spec.name, anc);
            }
        }

        // Phase 1: drafts.
        let mut drafts: Vec<Draft> = Vec::with_capacity(self.config.num_pages);
        let mut name_registry: HashMap<String, u32> = HashMap::new();
        let mut name_pool: Vec<String> = Vec::new();
        for _ in 0..self.config.num_pages {
            let domain = self.sample_domain(&mut rng);
            let leaves = ontology.leaves_of(domain);
            let leaf = leaves[rng.gen_range(0..leaves.len())];
            let draft = self.generate_draft(&mut rng, domain, leaf, &mut name_pool, &mut vocab);
            *name_registry.entry(draft.page.name.clone()).or_insert(0) += 1;
            drafts.push(draft);
        }

        // Phase 2: collision resolution — duplicated names must disambiguate.
        for d in &mut drafts {
            if name_registry[&d.page.name] > 1 {
                d.publish_bracket = true;
            }
            if d.publish_bracket {
                d.page.bracket = Some(d.bracket_content.clone());
            }
        }

        // Phase 3: finalize gold with resolved keys.
        let mut pages = Vec::with_capacity(drafts.len());
        for d in drafts {
            let key = d.page.key();
            for h in &d.gold_hypernyms {
                gold.add_entity_hypernym(&key, h);
            }
            for (sub, sup) in &d.gold_concept_pairs {
                gold.add_concept_pair(sub, sup);
                // A modified concept inherits its base's ancestors.
                for anc in ontology.ancestors(sup) {
                    gold.add_concept_pair(sub, anc);
                }
            }
            pages.push(d.page);
        }

        // Phase 4: concept pages (男演员 has its own page tagged 演员).
        for spec in crate::ontology::CONCEPTS {
            let Some(parent) = spec.parent else { continue };
            if !rng.gen_bool(self.config.concept_page_rate) {
                continue;
            }
            let mut tags = vec![parent.to_string()];
            if let Some(grand) = ontology.get(parent).and_then(|c| c.parent) {
                if rng.gen_bool(0.5) {
                    tags.push(grand.to_string());
                }
            }
            if rng.gen_bool(self.config.tag_thematic_rate) {
                tags.push(self.thematic_tag(&mut rng, spec.domain).to_string());
            }
            let page = Page {
                name: spec.name.to_string(),
                bracket: None,
                abstract_text: format!("{}是{}的一种。", spec.name, parent),
                infobox: vec![InfoboxTriple::new("中文名", spec.name)],
                tags,
                aliases: Vec::new(),
            };
            // Concept pages' "entity" isA pairs are really subconcept pairs;
            // gold already contains them transitively. Record them under the
            // entity judgement too so per-source precision can score them.
            let key = page.key();
            gold.add_entity_hypernym(&key, parent);
            for anc in ontology.ancestors(parent) {
                gold.add_entity_hypernym(&key, anc);
            }
            pages.push(page);
        }

        Corpus {
            pages,
            gold,
            config: self.config.clone(),
            vocab_counts: vocab,
        }
    }

    fn sample_domain(&self, rng: &mut StdRng) -> Domain {
        let x: f64 = rng.gen();
        match x {
            _ if x < 0.52 => Domain::Person,
            _ if x < 0.70 => Domain::Work,
            _ if x < 0.81 => Domain::Organization,
            _ if x < 0.88 => Domain::Place,
            _ if x < 0.93 => Domain::Organism,
            _ if x < 0.97 => Domain::Product,
            _ => Domain::Food,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn generate_draft(
        &self,
        rng: &mut StdRng,
        domain: Domain,
        leaf: &'static ConceptSpec,
        name_pool: &mut Vec<String>,
        vocab: &mut HashMap<String, u64>,
    ) -> Draft {
        let ontology = Ontology::global();
        let cfg = &self.config;

        // --- name (with deliberate collisions) ---
        let name = if !name_pool.is_empty() && rng.gen_bool(cfg.ambiguous_name_rate) {
            name_pool[rng.gen_range(0..name_pool.len())].clone()
        } else {
            let fresh = match domain {
                Domain::Person => names::person_name(rng),
                Domain::Work => names::work_title(rng),
                Domain::Organization => {
                    let suffixed = rng.gen_bool(0.5);
                    if suffixed {
                        names::org_name(rng, Some(self.org_suffix_for(leaf)))
                    } else {
                        names::org_name(rng, None)
                    }
                }
                Domain::Place => {
                    let suffix = self.place_suffix_for(leaf, rng);
                    names::place_name(rng, suffix)
                }
                Domain::Organism => names::organism_name(rng),
                Domain::Product => names::product_name(rng),
                Domain::Food => names::food_name(rng),
            };
            name_pool.push(fresh.clone());
            fresh
        };

        // --- gold concepts ---
        let mut gold_hypernyms: Vec<String> = vec![leaf.name.to_string()];
        for anc in ontology.ancestors(leaf.name) {
            gold_hypernyms.push(anc.to_string());
        }
        let second_leaf: Option<&'static ConceptSpec> =
            if domain == Domain::Person && rng.gen_bool(0.35) {
                let leaves = ontology.leaves_of(Domain::Person);
                let other = leaves[rng.gen_range(0..leaves.len())];
                if other.name != leaf.name {
                    gold_hypernyms.push(other.name.to_string());
                    for anc in ontology.ancestors(other.name) {
                        gold_hypernyms.push(anc.to_string());
                    }
                    Some(other)
                } else {
                    None
                }
            } else {
                None
            };

        // --- bracket ---
        let mut modified_concepts: Vec<(String, String)> = Vec::new(); // (modified, base)
        let bracket_content = self.bracket_for(
            rng,
            domain,
            leaf,
            second_leaf,
            &mut modified_concepts,
            vocab,
        );
        for (modified, _) in &modified_concepts {
            gold_hypernyms.push(modified.clone());
        }

        // --- tags ---
        let mut tags: Vec<String> = vec![leaf.name.to_string()];
        bump(vocab, leaf.name);
        if let Some(parent) = leaf.parent {
            if rng.gen_bool(0.6) {
                tags.push(parent.to_string());
                bump(vocab, parent);
            }
        }
        let root = ontology.ancestors(leaf.name).last().copied();
        if let Some(root) = root {
            if rng.gen_bool(0.5) {
                tags.push(root.to_string());
                bump(vocab, root);
            }
        }
        if let Some(second) = second_leaf {
            tags.push(second.name.to_string());
            bump(vocab, second.name);
        }
        if rng.gen_bool(cfg.tag_thematic_rate) {
            tags.push(self.thematic_tag(rng, domain).to_string());
        }
        if rng.gen_bool(cfg.tag_ne_rate) {
            let ne = if rng.gen_bool(0.5) {
                names::place_name(rng, '市')
            } else {
                names::person_name(rng)
            };
            tags.push(ne);
        }
        if rng.gen_bool(cfg.tag_wrong_concept_rate) {
            // Half same-domain (compatible, hard to catch), half cross-domain.
            let wrong = if rng.gen_bool(0.5) {
                let leaves = ontology.leaves_of(domain);
                leaves[rng.gen_range(0..leaves.len())].name
            } else {
                let all = ontology.all_leaves();
                all[rng.gen_range(0..all.len())].name
            };
            if !gold_hypernyms.iter().any(|g| g == wrong) {
                tags.push(wrong.to_string());
            }
        }

        // --- infobox ---
        let infobox = self.infobox_for(rng, domain, leaf, &name, vocab);

        // --- abstract ---
        let abstract_text = self.abstract_for(rng, domain, leaf, second_leaf, &name, vocab);

        // --- aliases ---
        let mut aliases = Vec::new();
        if domain == Domain::Person && rng.gen_bool(0.15) {
            let last = name.chars().last().unwrap();
            aliases.push(format!("阿{last}"));
        }

        let page = Page {
            name,
            bracket: None,
            abstract_text,
            infobox,
            tags,
            aliases,
        };
        let publish_bracket = rng.gen_bool(cfg.bracket_rate);

        let mut draft = Draft {
            page,
            bracket_content,
            publish_bracket,
            gold_hypernyms,
            gold_concept_pairs: modified_concepts,
        };
        draft.gold_hypernyms.sort();
        draft.gold_hypernyms.dedup();
        draft
    }

    fn org_suffix_for(&self, leaf: &ConceptSpec) -> &'static str {
        match leaf.name {
            "科技公司" => "有限公司",
            "电影公司" => "影业公司",
            "唱片公司" => "唱片公司",
            "商业银行" => "银行",
            "综合性大学" | "师范大学" | "理工大学" => "大学",
            "中学" => "中学",
            "三甲医院" => "医院",
            "研究所" => "研究所",
            "博物馆" => "博物馆",
            "图书馆" => "图书馆",
            "出版社" => "出版社",
            "电视台" => "电视台",
            "足球俱乐部" | "篮球俱乐部" => "俱乐部",
            "乐队" => "乐队",
            _ => "集团",
        }
    }

    fn place_suffix_for(&self, leaf: &ConceptSpec, rng: &mut StdRng) -> char {
        match leaf.name {
            "省会城市" | "沿海城市" => '市',
            "县" => '县',
            "山峰" => '山',
            "河流" => '河',
            "湖泊" => '湖',
            "岛屿" | "岛国" => '岛',
            "内陆国" => '国',
            _ => {
                if rng.gen_bool(0.5) {
                    '市'
                } else {
                    '县'
                }
            }
        }
    }

    /// Thematic topic plausibly attached to pages of this domain.
    fn thematic_tag(&self, rng: &mut StdRng, domain: Domain) -> &'static str {
        let pool: &[&'static str] = match domain {
            Domain::Person => &["娱乐", "音乐", "影视", "体育", "文学", "科学"],
            Domain::Work => &["影视", "音乐", "文学", "娱乐", "科幻"],
            Domain::Organization => &["商业", "金融", "教育", "科技"],
            Domain::Place => &["旅游", "地理", "自然"],
            Domain::Organism => &["自然", "宠物", "园艺"],
            Domain::Product => &["数码", "科技", "汽车工业"],
            Domain::Food => &["美食", "烹饪", "生活"],
        };
        // 汽车工业 is not in the lexicon; fall back to 数码 when sampled.
        let pick = pool[rng.gen_range(0..pool.len())];
        if cnp_text::lexicons::is_thematic(pick) {
            pick
        } else {
            "数码"
        }
    }

    /// Builds the bracket compound and records modified concepts
    /// `(modified, base)` it introduces (首席战略官 → 战略官).
    fn bracket_for(
        &self,
        rng: &mut StdRng,
        domain: Domain,
        leaf: &'static ConceptSpec,
        second_leaf: Option<&'static ConceptSpec>,
        modified: &mut Vec<(String, String)>,
        vocab: &mut HashMap<String, u64>,
    ) -> String {
        match domain {
            Domain::Person => {
                let business = matches!(leaf.name, "执行官" | "战略官" | "分析师");
                if business {
                    let org = names::org_name(rng, None);
                    for part in [&org[..6], &org[6..]] {
                        bump(vocab, part);
                    }
                    let chief = rng.gen_bool(0.7);
                    bump(vocab, leaf.name);
                    if chief {
                        let m = format!("首席{}", leaf.name);
                        modified.push((m.clone(), leaf.name.to_string()));
                        format!("{org}{m}")
                    } else {
                        format!("{org}{}", leaf.name)
                    }
                } else {
                    let mut parts = String::new();
                    if rng.gen_bool(0.5) {
                        let c = names::pick(rng, &COUNTRY_MODS);
                        parts.push_str(c);
                        bump(vocab, c);
                        if c == "中国" && rng.gen_bool(0.5) {
                            let city = names::pick(rng, &CITY_MODS);
                            parts.push_str(city);
                            bump(vocab, city);
                        }
                    }
                    parts.push_str(leaf.name);
                    bump(vocab, leaf.name);
                    if let Some(second) = second_leaf {
                        parts.push('、');
                        parts.push_str(second.name);
                        bump(vocab, second.name);
                    }
                    parts
                }
            }
            Domain::Work | Domain::Organization | Domain::Place => {
                let mut parts = String::new();
                if rng.gen_bool(0.4) {
                    let c = names::pick(rng, &COUNTRY_MODS);
                    parts.push_str(c);
                    bump(vocab, c);
                }
                parts.push_str(leaf.name);
                bump(vocab, leaf.name);
                parts
            }
            Domain::Organism | Domain::Product | Domain::Food => {
                bump(vocab, leaf.name);
                leaf.name.to_string()
            }
        }
    }

    fn infobox_for(
        &self,
        rng: &mut StdRng,
        domain: Domain,
        leaf: &'static ConceptSpec,
        name: &str,
        vocab: &mut HashMap<String, u64>,
    ) -> Vec<InfoboxTriple> {
        let cfg = &self.config;
        let mut triples = vec![InfoboxTriple::new("中文名", name)];
        let push_isa = |rng: &mut StdRng,
                        pred: &str,
                        value: &str,
                        triples: &mut Vec<InfoboxTriple>,
                        vocab: &mut HashMap<String, u64>| {
            let noisy = rng.gen_bool(cfg.infobox_noise_rate);
            let v = if noisy {
                // Wrong value: a thematic word or an unrelated concept.
                if rng.gen_bool(0.5) {
                    cnp_text::lexicons::THEMATIC_WORDS
                        [rng.gen_range(0..cnp_text::lexicons::THEMATIC_WORDS.len())]
                    .to_string()
                } else {
                    let all = Ontology::global().all_leaves();
                    all[rng.gen_range(0..all.len())].name.to_string()
                }
            } else {
                value.to_string()
            };
            bump(vocab, pred);
            triples.push(InfoboxTriple::new(pred, v));
        };

        match domain {
            Domain::Person => {
                let country = names::pick(rng, &COUNTRY_MODS);
                triples.push(InfoboxTriple::new("国籍", country));
                triples.push(InfoboxTriple::new("出生地", names::place_name(rng, '市')));
                triples.push(InfoboxTriple::new(
                    "出生日期",
                    format!(
                        "{}年{}月{}日",
                        rng.gen_range(1930..2005),
                        rng.gen_range(1..13),
                        rng.gen_range(1..29)
                    ),
                ));
                push_isa(rng, "职业", leaf.name, &mut triples, vocab);
                if rng.gen_bool(0.4) {
                    if let Some(parent) = leaf.parent {
                        push_isa(rng, "身份", parent, &mut triples, vocab);
                    }
                }
                if matches!(leaf.name, "执行官" | "战略官" | "分析师") {
                    push_isa(rng, "职务", leaf.name, &mut triples, vocab);
                }
                triples.push(InfoboxTriple::new(
                    "毕业院校",
                    names::org_name(rng, Some("大学")),
                ));
                triples.push(InfoboxTriple::new("代表作品", names::work_title(rng)));
                triples.push(InfoboxTriple::new(
                    "身高",
                    format!("{}cm", rng.gen_range(150..195)),
                ));
            }
            Domain::Work => {
                push_isa(rng, "类型", leaf.name, &mut triples, vocab);
                if matches!(
                    leaf.name,
                    "长篇小说" | "短篇小说" | "武侠小说" | "诗集" | "散文集"
                ) {
                    push_isa(rng, "体裁", leaf.name, &mut triples, vocab);
                    triples.push(InfoboxTriple::new("作者", names::person_name(rng)));
                    triples.push(InfoboxTriple::new(
                        "出版时间",
                        format!("{}年", rng.gen_range(1950..2020)),
                    ));
                } else {
                    triples.push(InfoboxTriple::new("导演", names::person_name(rng)));
                    triples.push(InfoboxTriple::new("主演", names::person_name(rng)));
                    triples.push(InfoboxTriple::new(
                        "发行时间",
                        format!("{}年", rng.gen_range(1970..2020)),
                    ));
                }
            }
            Domain::Organization => {
                push_isa(rng, "性质", leaf.name, &mut triples, vocab);
                if matches!(leaf.name, "综合性大学" | "师范大学" | "理工大学" | "中学")
                {
                    push_isa(rng, "学校类别", leaf.name, &mut triples, vocab);
                }
                if leaf.name == "三甲医院" {
                    push_isa(rng, "医院等级", leaf.name, &mut triples, vocab);
                }
                triples.push(InfoboxTriple::new(
                    "成立时间",
                    format!("{}年", rng.gen_range(1900..2018)),
                ));
                triples.push(InfoboxTriple::new("总部地点", names::place_name(rng, '市')));
                triples.push(InfoboxTriple::new("创始人", names::person_name(rng)));
            }
            Domain::Place => {
                push_isa(rng, "行政区类别", leaf.name, &mut triples, vocab);
                triples.push(InfoboxTriple::new(
                    "所属地区",
                    names::pick(rng, &COUNTRY_MODS),
                ));
                triples.push(InfoboxTriple::new(
                    "面积",
                    format!("{}平方公里", rng.gen_range(10..20000)),
                ));
                triples.push(InfoboxTriple::new(
                    "人口",
                    format!("{}万", rng.gen_range(1..800)),
                ));
            }
            Domain::Organism => {
                push_isa(rng, "分类", leaf.name, &mut triples, vocab);
                triples.push(InfoboxTriple::new(
                    "界",
                    if matches!(leaf.name, "乔木" | "灌木" | "草本植物" | "花卉") {
                        "植物界"
                    } else {
                        "动物界"
                    },
                ));
                triples.push(InfoboxTriple::new("分布区域", names::place_name(rng, '山')));
            }
            Domain::Product => {
                push_isa(rng, "类别", leaf.name, &mut triples, vocab);
                triples.push(InfoboxTriple::new(
                    "品牌",
                    names::pick(rng, &names::BRAND_WORDS),
                ));
                triples.push(InfoboxTriple::new(
                    "发布时间",
                    format!("{}年", rng.gen_range(2000..2020)),
                ));
                triples.push(InfoboxTriple::new(
                    "生产商",
                    names::org_name(rng, Some("有限公司")),
                ));
            }
            Domain::Food => {
                push_isa(rng, "菜系", leaf.name, &mut triples, vocab);
                triples.push(InfoboxTriple::new("主要食材", names::food_name(rng)));
                triples.push(InfoboxTriple::new("口味", "咸鲜"));
            }
        }

        // Junk predicates: the 341-candidate haystack.
        let n_junk = rng.gen_range(0..=2);
        for _ in 0..n_junk {
            let pred = format!(
                "{}{}",
                JUNK_PFX[rng.gen_range(0..JUNK_PFX.len())],
                JUNK_MID[rng.gen_range(0..JUNK_MID.len())]
            );
            let value = if rng.gen_bool(cfg.junk_concept_value_rate) {
                let all = Ontology::global().all_leaves();
                all[rng.gen_range(0..all.len())].name.to_string()
            } else if rng.gen_bool(0.5) {
                names::work_title(rng)
            } else {
                format!("第{}届", rng.gen_range(1..40))
            };
            triples.push(InfoboxTriple::new(pred, value));
        }
        triples
    }

    fn abstract_for(
        &self,
        rng: &mut StdRng,
        domain: Domain,
        leaf: &'static ConceptSpec,
        second_leaf: Option<&'static ConceptSpec>,
        name: &str,
        vocab: &mut HashMap<String, u64>,
    ) -> String {
        let omit = rng.gen_bool(self.config.abstract_omit_concept_rate);
        let concept_phrase = if omit {
            String::new()
        } else {
            bump(vocab, leaf.name);
            match second_leaf {
                Some(second) => {
                    bump(vocab, second.name);
                    format!("{}、{}", leaf.name, second.name)
                }
                None => leaf.name.to_string(),
            }
        };
        match domain {
            Domain::Person => {
                let year = rng.gen_range(1930..2005);
                let place = names::place_name(rng, '市');
                if omit {
                    format!("{name}，{year}年出生于{place}。")
                } else {
                    let country = names::pick(rng, &COUNTRY_MODS);
                    bump(vocab, country);
                    format!("{name}，{year}年出生于{place}，{country}{concept_phrase}。")
                }
            }
            Domain::Work => {
                let year = rng.gen_range(1970..2020);
                if omit {
                    format!("《{name}》发行于{year}年。")
                } else {
                    let person = names::person_name(rng);
                    format!("《{name}》是{person}创作的{concept_phrase}，发行于{year}年。")
                }
            }
            Domain::Organization => {
                let year = rng.gen_range(1900..2018);
                let place = names::place_name(rng, '市');
                if omit {
                    format!("{name}成立于{year}年，总部位于{place}。")
                } else {
                    format!("{name}是一家{concept_phrase}，成立于{year}年，总部位于{place}。")
                }
            }
            Domain::Place => {
                if omit {
                    format!("{name}位于{}。", names::pick(rng, &COUNTRY_MODS))
                } else {
                    format!(
                        "{name}是{}的{concept_phrase}，人口约{}万。",
                        names::pick(rng, &COUNTRY_MODS),
                        rng.gen_range(1..800)
                    )
                }
            }
            Domain::Organism => {
                if omit {
                    format!("{name}分布于{}一带。", names::place_name(rng, '山'))
                } else {
                    format!(
                        "{name}是一种{concept_phrase}，分布于{}一带。",
                        names::place_name(rng, '山')
                    )
                }
            }
            Domain::Product => {
                let year = rng.gen_range(2000..2020);
                if omit {
                    format!("{name}发布于{year}年。")
                } else {
                    format!(
                        "{name}是{}发布的{concept_phrase}。",
                        names::org_name(rng, Some("有限公司"))
                    )
                }
            }
            Domain::Food => {
                if omit {
                    format!("{name}口味咸鲜。")
                } else {
                    format!("{name}是一道{concept_phrase}，口味咸鲜。")
                }
            }
        }
    }
}

fn bump(vocab: &mut HashMap<String, u64>, word: &str) {
    *vocab.entry(word.to_string()).or_insert(0) += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        CorpusGenerator::new(CorpusConfig::tiny(7)).generate()
    }

    #[test]
    fn generates_requested_page_count_plus_concept_pages() {
        let c = tiny_corpus();
        assert!(c.pages.len() >= c.config.num_pages);
        assert!(c.num_concept_pages() > 50, "concept pages missing");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = CorpusGenerator::new(CorpusConfig::tiny(9)).generate();
        let b = CorpusGenerator::new(CorpusConfig::tiny(9)).generate();
        assert_eq!(a.pages.len(), b.pages.len());
        for (pa, pb) in a.pages.iter().zip(&b.pages) {
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusGenerator::new(CorpusConfig::tiny(1)).generate();
        let b = CorpusGenerator::new(CorpusConfig::tiny(2)).generate();
        let same = a
            .pages
            .iter()
            .zip(&b.pages)
            .filter(|(x, y)| x.name == y.name)
            .count();
        assert!(same < a.pages.len() / 2);
    }

    #[test]
    fn duplicate_names_are_disambiguated() {
        let c = tiny_corpus();
        let mut by_name: HashMap<&str, Vec<&Page>> = HashMap::new();
        for p in &c.pages {
            by_name.entry(p.name.as_str()).or_default().push(p);
        }
        for (name, pages) in by_name {
            if pages.len() > 1 && !c.gold.is_concept(name) {
                for p in pages {
                    assert!(p.bracket.is_some(), "colliding page {name} lacks a bracket");
                }
            }
        }
    }

    #[test]
    fn every_entity_page_has_gold_labels() {
        let c = tiny_corpus();
        for p in &c.pages {
            let key = p.key();
            assert!(
                c.gold.hypernyms_of(&key).is_some(),
                "page {key} has no gold labels"
            );
        }
    }

    #[test]
    fn first_tag_is_always_gold_correct() {
        let c = tiny_corpus();
        for p in &c.pages {
            if c.gold.is_concept(&p.name) {
                continue; // concept pages judged at concept level
            }
            let key = p.key();
            assert!(
                c.gold.is_correct_entity_isa(&key, &p.tags[0]),
                "leaf tag {} of {key} not gold",
                p.tags[0]
            );
        }
    }

    #[test]
    fn tags_contain_noise_at_roughly_configured_rate() {
        let c = CorpusGenerator::new(CorpusConfig::small(11)).generate();
        let mut thematic = 0usize;
        let mut entity_pages = 0usize;
        for p in &c.pages {
            if c.gold.is_concept(&p.name) {
                continue;
            }
            entity_pages += 1;
            if p.tags.iter().any(|t| cnp_text::lexicons::is_thematic(t)) {
                thematic += 1;
            }
        }
        let rate = thematic as f64 / entity_pages as f64;
        assert!(
            (0.04..0.14).contains(&rate),
            "thematic tag rate {rate} far from configured 0.08"
        );
    }

    #[test]
    fn infobox_isa_predicates_mostly_correct() {
        let c = tiny_corpus();
        let mut correct = 0usize;
        let mut total = 0usize;
        for p in &c.pages {
            if c.gold.is_concept(&p.name) {
                continue;
            }
            let key = p.key();
            for t in &p.infobox {
                if ISA_PREDICATES.contains(&t.predicate.as_str()) {
                    total += 1;
                    if c.gold.is_correct_entity_isa(&key, &t.value) {
                        correct += 1;
                    }
                }
            }
        }
        assert!(total > 100);
        let precision = correct as f64 / total as f64;
        assert!(precision > 0.93, "infobox isA precision {precision}");
    }

    #[test]
    fn junk_predicates_present_in_bulk() {
        let c = CorpusGenerator::new(CorpusConfig::small(13)).generate();
        let mut junk_preds: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for p in &c.pages {
            for t in &p.infobox {
                if !ISA_PREDICATES.contains(&t.predicate.as_str())
                    && JUNK_PFX.iter().any(|x| t.predicate.starts_with(x))
                {
                    junk_preds.insert(t.predicate.as_str());
                }
            }
        }
        assert!(
            junk_preds.len() > 200,
            "junk predicate variety too low: {}",
            junk_preds.len()
        );
    }

    #[test]
    fn abstracts_usually_mention_the_leaf_concept() {
        let c = tiny_corpus();
        let mut mentions = 0usize;
        let mut entity_pages = 0usize;
        for p in &c.pages {
            if c.gold.is_concept(&p.name) {
                continue;
            }
            entity_pages += 1;
            if p.tags
                .first()
                .map(|leaf| p.abstract_text.contains(leaf.as_str()))
                .unwrap_or(false)
            {
                mentions += 1;
            }
        }
        let rate = mentions as f64 / entity_pages as f64;
        assert!(rate > 0.8, "abstract concept mention rate {rate}");
    }

    #[test]
    fn dictionary_covers_concepts_and_modifiers() {
        let c = tiny_corpus();
        let dict = c.dictionary();
        let words: std::collections::HashSet<&str> =
            dict.iter().map(|(w, _, _)| w.as_str()).collect();
        assert!(words.contains("演员") || words.contains("男演员"));
        assert!(words.contains("中国"));
        for (_, f, _) in &dict {
            assert!(*f > 0);
        }
    }

    #[test]
    fn business_brackets_compose_org_and_title() {
        // Scan a larger corpus for at least one 首席-style bracket.
        let c = CorpusGenerator::new(CorpusConfig::small(17)).generate();
        let found = c.pages.iter().any(|p| {
            p.bracket
                .as_deref()
                .is_some_and(|b| b.contains("首席") && b.chars().count() >= 7)
        });
        assert!(found, "no 蚂蚁金服首席战略官-style bracket generated");
    }

    #[test]
    fn gold_concept_pairs_include_ontology_transitive_closure() {
        let c = tiny_corpus();
        assert!(c.gold.is_correct_concept_isa("男演员", "演员"));
        assert!(c.gold.is_correct_concept_isa("男演员", "人物"));
        assert!(!c.gold.is_correct_concept_isa("演员", "男演员"));
    }
}
