//! Encyclopedia page model — the four sources of Figure 1.
//!
//! A page mirrors what CN-DBpedia exposes per entity: the title (entity
//! name), the *bracket* disambiguation, the *abstract* paragraph, the
//! *infobox* SPO triples and the *tags* — marked (a)–(d) in the paper's
//! Figure 1 (刘德华 example).

/// One infobox triple `<subject, predicate, value>` (subject is the page).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoboxTriple {
    /// Predicate (属性名), e.g. 职业.
    pub predicate: String,
    /// Value (属性值), e.g. 演员.
    pub value: String,
}

impl InfoboxTriple {
    /// Convenience constructor.
    pub fn new(predicate: impl Into<String>, value: impl Into<String>) -> Self {
        InfoboxTriple {
            predicate: predicate.into(),
            value: value.into(),
        }
    }
}

/// An encyclopedia page (= one disambiguated entity).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Page {
    /// Entity surface name (刘德华).
    pub name: String,
    /// Bracket disambiguation (中国香港男演员、歌手), when present.
    pub bracket: Option<String>,
    /// Abstract paragraph.
    pub abstract_text: String,
    /// Infobox triples.
    pub infobox: Vec<InfoboxTriple>,
    /// Tags (标签).
    pub tags: Vec<String>,
    /// Known aliases (mention surface forms beyond the name).
    pub aliases: Vec<String>,
}

impl Page {
    /// The disambiguated entity key: `name（bracket）` or `name`.
    pub fn key(&self) -> String {
        match &self.bracket {
            Some(b) => format!("{}（{}）", self.name, b),
            None => self.name.clone(),
        }
    }

    /// Bracket disambiguation as `&str` (empty when absent).
    pub fn bracket_str(&self) -> &str {
        self.bracket.as_deref().unwrap_or("")
    }

    /// Infobox lookup by predicate (first match).
    pub fn infobox_value(&self, predicate: &str) -> Option<&str> {
        self.infobox
            .iter()
            .find(|t| t.predicate == predicate)
            .map(|t| t.value.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn liu_dehua() -> Page {
        Page {
            name: "刘德华".to_string(),
            bracket: Some("中国香港男演员、歌手".to_string()),
            abstract_text: "刘德华，1961年出生于中国香港，男演员、歌手。".to_string(),
            infobox: vec![
                InfoboxTriple::new("中文名", "刘德华"),
                InfoboxTriple::new("职业", "演员"),
                InfoboxTriple::new("体重", "63KG"),
            ],
            tags: vec![
                "人物".into(),
                "演员".into(),
                "娱乐人物".into(),
                "音乐".into(),
            ],
            aliases: vec!["Andy Lau".into()],
        }
    }

    #[test]
    fn key_includes_bracket() {
        let p = liu_dehua();
        assert_eq!(p.key(), "刘德华（中国香港男演员、歌手）");
        let plain = Page {
            name: "演员".into(),
            ..Default::default()
        };
        assert_eq!(plain.key(), "演员");
    }

    #[test]
    fn infobox_lookup() {
        let p = liu_dehua();
        assert_eq!(p.infobox_value("职业"), Some("演员"));
        assert_eq!(p.infobox_value("身高"), None);
    }

    #[test]
    fn bracket_str_defaults_empty() {
        let p = Page::default();
        assert_eq!(p.bracket_str(), "");
    }
}
