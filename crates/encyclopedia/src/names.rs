//! Chinese name generators for every entity domain.
//!
//! Names are built compositionally from embedded word pools so that (a) the
//! corpus vocabulary is realistic Chinese, (b) multi-word names (蚂蚁金服)
//! segment into dictionary words whose within-name PMI is high — the signal
//! the separation algorithm relies on, and (c) name collisions occur at a
//! controlled rate, exercising disambiguation and `men2ent`.

use cnp_text::lexicons::{GIVEN_NAME_CHARS, SURNAMES};
use rand::rngs::StdRng;
use rand::Rng;

/// Two-character brand/org first words (dictionary words, OOV as full names).
pub static ORG_PREFIX_WORDS: [&str; 24] = [
    "星辰", "蓝天", "华宇", "金石", "天和", "瑞丰", "东方", "盛世", "云帆", "磐石", "晨曦", "远景",
    "宏图", "凌云", "海纳", "方舟", "启明", "恒通", "永信", "中坚", "卓越", "腾飞", "万象", "聚力",
];

/// Second words of company-style names (蚂蚁金服's 金服 slot).
pub static ORG_SECOND_WORDS: [&str; 12] = [
    "科技", "金服", "传媒", "影业", "网络", "重工", "食品", "医药", "证券", "能源", "教育", "文创",
];

/// Place-name first words.
pub static PLACE_FIRST_WORDS: [&str; 20] = [
    "临江",
    "云梦",
    "青山",
    "白沙",
    "龙泉",
    "凤凰",
    "石桥",
    "柳林",
    "梅岭",
    "桃源",
    "金沙",
    "银川北",
    "望海",
    "长风",
    "东湖",
    "南屏",
    "西岭",
    "北川南",
    "中原东",
    "安宁",
];

/// Work-title word pool (titles compose two of these).
pub static WORK_TITLE_WORDS: [&str; 28] = [
    "彩云", "流光", "夜雨", "孤城", "归途", "星河", "暗涌", "长歌", "断桥", "晚风", "初雪", "残阳",
    "碧海", "青衫", "浮生", "惊鸿", "镜花", "疾风", "烈火", "静水", "远山", "旧梦", "春潮", "秋声",
    "寒霜", "曙光", "迷雾", "无痕",
];

/// Organism name material.
pub static ORGANISM_FIRST: [&str; 16] = [
    "赤斑", "青纹", "白腹", "黑背", "金冠", "银鳞", "紫羽", "灰喉", "红嘴", "蓝尾", "斑点", "细叶",
    "阔叶", "垂枝", "山地", "沼泽",
];

/// Organism suffixes by kind.
pub static ORGANISM_SUFFIX: [&str; 12] = [
    "雀", "鹛", "鲤", "鲑", "蛙", "龟", "豹", "鹿", "松", "杉", "兰", "菊",
];

/// Food name material.
pub static FOOD_FIRST: [&str; 12] = [
    "椒麻", "糖醋", "清蒸", "红烧", "干煸", "蒜香", "椰香", "桂花", "陈皮", "豉汁", "酸汤", "香煎",
];

/// Food suffixes.
pub static FOOD_SECOND: [&str; 10] = [
    "鸡", "鱼", "豆腐", "排骨", "牛肉", "年糕", "酥饼", "汤圆", "奶茶", "凉粉",
];

/// Product brand syllables (ASCII, like real model names).
pub static BRAND_WORDS: [&str; 10] = [
    "Nova", "Lumo", "Vertex", "Aero", "Pulse", "Orion", "Zenit", "Kite", "Echo", "Tide",
];

/// Uniformly samples one item from a static slice.
pub fn pick<T: Copy>(rng: &mut StdRng, pool: &[T]) -> T {
    pool[rng.gen_range(0..pool.len())]
}

/// Generates a person name: surname + 1–2 given-name chars.
pub fn person_name(rng: &mut StdRng) -> String {
    let mut s = pick(rng, &SURNAMES).to_string();
    let given = if rng.gen_bool(0.75) { 2 } else { 1 };
    for _ in 0..given {
        s.push_str(pick(rng, &GIVEN_NAME_CHARS));
    }
    s
}

/// Generates a company-style org name: 星辰科技 / 蚂蚁金服-like 2+2 compound,
/// optionally with an institutional suffix (有限公司).
pub fn org_name(rng: &mut StdRng, suffix: Option<&str>) -> String {
    let mut s = String::new();
    s.push_str(pick(rng, &ORG_PREFIX_WORDS));
    s.push_str(pick(rng, &ORG_SECOND_WORDS));
    if let Some(suf) = suffix {
        s.push_str(suf);
    }
    s
}

/// Generates a place name with the given suffix char (市 / 县 / 山 …).
pub fn place_name(rng: &mut StdRng, suffix: char) -> String {
    let mut s = pick(rng, &PLACE_FIRST_WORDS).to_string();
    s.push(suffix);
    s
}

/// Generates a work title: two poetic words, e.g. 彩云归途.
pub fn work_title(rng: &mut StdRng) -> String {
    let a = pick(rng, &WORK_TITLE_WORDS);
    let mut b = pick(rng, &WORK_TITLE_WORDS);
    while b == a {
        b = pick(rng, &WORK_TITLE_WORDS);
    }
    format!("{a}{b}")
}

/// Generates an organism name.
pub fn organism_name(rng: &mut StdRng) -> String {
    let mut s = pick(rng, &ORGANISM_FIRST).to_string();
    s.push_str(pick(rng, &ORGANISM_SUFFIX));
    s
}

/// Generates a product name: brand + model number.
pub fn product_name(rng: &mut StdRng) -> String {
    format!("{}{}", pick(rng, &BRAND_WORDS), rng.gen_range(1..30))
}

/// Generates a food name.
pub fn food_name(rng: &mut StdRng) -> String {
    let mut s = pick(rng, &FOOD_FIRST).to_string();
    s.push_str(pick(rng, &FOOD_SECOND));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn person_names_start_with_surname() {
        let mut r = rng();
        for _ in 0..50 {
            let n = person_name(&mut r);
            let first: String = n.chars().take(1).collect();
            assert!(cnp_text::lexicons::is_surname(&first), "{n}");
            let len = n.chars().count();
            assert!((2..=3).contains(&len), "{n}");
        }
    }

    #[test]
    fn org_names_compose_two_words() {
        let mut r = rng();
        let n = org_name(&mut r, None);
        assert_eq!(n.chars().count(), 4);
        let with_suffix = org_name(&mut r, Some("有限公司"));
        assert!(with_suffix.ends_with("有限公司"));
    }

    #[test]
    fn place_names_end_with_suffix() {
        let mut r = rng();
        let n = place_name(&mut r, '市');
        assert!(n.ends_with('市'));
        assert!(n.chars().count() >= 3);
    }

    #[test]
    fn work_titles_are_four_chars_two_words() {
        let mut r = rng();
        for _ in 0..20 {
            let t = work_title(&mut r);
            assert_eq!(t.chars().count(), 4, "{t}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(person_name(&mut a), person_name(&mut b));
        assert_eq!(org_name(&mut a, None), org_name(&mut b, None));
    }

    #[test]
    fn product_and_food_names_nonempty() {
        let mut r = rng();
        assert!(!product_name(&mut r).is_empty());
        assert!(!food_name(&mut r).is_empty());
        assert!(!organism_name(&mut r).is_empty());
    }
}
