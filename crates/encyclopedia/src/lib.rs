#![forbid(unsafe_code)]
//! # cnp-encyclopedia — synthetic Chinese-encyclopedia substrate
//!
//! The CN-Probase paper builds its taxonomy from CN-DBpedia (Baidu Baike +
//! Hudong Baike + Chinese Wikipedia). That dump is unavailable, so this
//! crate is the documented substitution (see DESIGN.md §1): a generator
//! that produces encyclopedia pages with the same four sources — bracket,
//! abstract, infobox, tag (paper Figure 1) — the same noise classes the
//! verification module targets, and *known ground truth* for exact
//! precision evaluation.
//!
//! * [`ontology`] — the gold concept DAG (120+ concepts over 7 domains).
//! * [`names`] — compositional Chinese name generators.
//! * [`page`] — the page data model.
//! * [`generator`] — the corpus generator with configurable scale and
//!   noise rates.
//! * [`gold`] — ground-truth isA labels recorded during generation.
//! * [`dump`] — CN-DBpedia-style dump file reader/writer.

pub mod dump;
pub mod generator;
pub mod gold;
pub mod names;
pub mod ontology;
pub mod page;

pub use generator::{Corpus, CorpusConfig, CorpusGenerator, ISA_PREDICATES};
pub use gold::GoldLabels;
pub use ontology::{ConceptSpec, Domain, Ontology};
pub use page::{InfoboxTriple, Page};
