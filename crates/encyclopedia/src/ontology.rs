//! The gold ontology: the synthetic world model behind the encyclopedia.
//!
//! CN-DBpedia is built from Baidu Baike / Hudong Baike / Chinese Wikipedia;
//! we cannot ship those dumps, so the corpus generator samples entities from
//! this hand-built concept DAG instead. The DAG doubles as *ground truth*:
//! evaluation judges extracted isA pairs against it, replacing the paper's
//! manual labelling of 2 000 sampled pairs.
//!
//! Concepts are organised per [`Domain`]; every concept knows its parent,
//! and leaf concepts carry entity-generation hints (which modifiers are
//! applicable, which infobox predicates apply).

use std::collections::HashMap;
use std::sync::OnceLock;

/// Coarse entity domain, which drives name shape, infobox schema and
/// abstract templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// People (persons, professions).
    Person,
    /// Creative works (films, songs, novels, games, software).
    Work,
    /// Organizations (companies, schools, hospitals …).
    Organization,
    /// Places (countries, cities, mountains …).
    Place,
    /// Animals and plants.
    Organism,
    /// Manufactured products (phones, cars …).
    Product,
    /// Food and drink.
    Food,
}

impl Domain {
    /// All domains, in generation-weight order.
    pub const ALL: [Domain; 7] = [
        Domain::Person,
        Domain::Work,
        Domain::Organization,
        Domain::Place,
        Domain::Organism,
        Domain::Product,
        Domain::Food,
    ];
}

/// A concept node in the gold ontology.
#[derive(Debug, Clone, Copy)]
pub struct ConceptSpec {
    /// Concept name (Chinese).
    pub name: &'static str,
    /// Parent concept name; `None` for domain roots.
    pub parent: Option<&'static str>,
    /// Owning domain.
    pub domain: Domain,
    /// Whether entities are generated directly under this concept.
    pub is_leaf: bool,
}

macro_rules! concept {
    ($name:literal, $parent:expr, $domain:expr, leaf) => {
        ConceptSpec {
            name: $name,
            parent: $parent,
            domain: $domain,
            is_leaf: true,
        }
    };
    ($name:literal, $parent:expr, $domain:expr) => {
        ConceptSpec {
            name: $name,
            parent: $parent,
            domain: $domain,
            is_leaf: false,
        }
    };
}

/// The full gold concept inventory.
///
/// Names deliberately avoid every entry of the thematic lexicon
/// (`cnp_text::lexicons::THEMATIC_WORDS`): thematic words are *never*
/// legitimate concepts, which is exactly what verification rule §III-C(1)
/// enforces.
pub static CONCEPTS: &[ConceptSpec] = &[
    // ---------------- Person ----------------
    concept!("人物", None, Domain::Person),
    concept!("娱乐人物", Some("人物"), Domain::Person),
    concept!("演员", Some("娱乐人物"), Domain::Person),
    concept!("男演员", Some("演员"), Domain::Person, leaf),
    concept!("女演员", Some("演员"), Domain::Person, leaf),
    concept!("喜剧演员", Some("演员"), Domain::Person, leaf),
    concept!("歌手", Some("娱乐人物"), Domain::Person),
    concept!("流行歌手", Some("歌手"), Domain::Person, leaf),
    concept!("民谣歌手", Some("歌手"), Domain::Person, leaf),
    concept!("导演", Some("娱乐人物"), Domain::Person, leaf),
    concept!("主持人", Some("娱乐人物"), Domain::Person, leaf),
    concept!("编剧", Some("娱乐人物"), Domain::Person, leaf),
    concept!("制片人", Some("娱乐人物"), Domain::Person, leaf),
    concept!("文化人物", Some("人物"), Domain::Person),
    concept!("作家", Some("文化人物"), Domain::Person),
    concept!("小说家", Some("作家"), Domain::Person, leaf),
    concept!("诗人", Some("作家"), Domain::Person, leaf),
    concept!("画家", Some("文化人物"), Domain::Person, leaf),
    concept!("书法家", Some("文化人物"), Domain::Person, leaf),
    concept!("音乐家", Some("文化人物"), Domain::Person),
    concept!("钢琴家", Some("音乐家"), Domain::Person, leaf),
    concept!("作曲家", Some("音乐家"), Domain::Person, leaf),
    concept!("翻译家", Some("文化人物"), Domain::Person, leaf),
    concept!("科学人物", Some("人物"), Domain::Person),
    concept!("科学家", Some("科学人物"), Domain::Person),
    concept!("物理学家", Some("科学家"), Domain::Person, leaf),
    concept!("化学家", Some("科学家"), Domain::Person, leaf),
    concept!("数学家", Some("科学家"), Domain::Person, leaf),
    concept!("生物学家", Some("科学家"), Domain::Person, leaf),
    concept!("工程师", Some("科学人物"), Domain::Person, leaf),
    concept!("医生", Some("科学人物"), Domain::Person, leaf),
    concept!("教授", Some("科学人物"), Domain::Person, leaf),
    concept!("体育人物", Some("人物"), Domain::Person),
    concept!("运动员", Some("体育人物"), Domain::Person),
    concept!("足球运动员", Some("运动员"), Domain::Person, leaf),
    concept!("篮球运动员", Some("运动员"), Domain::Person, leaf),
    concept!("游泳运动员", Some("运动员"), Domain::Person, leaf),
    concept!("教练员", Some("体育人物"), Domain::Person, leaf),
    concept!("商业人物", Some("人物"), Domain::Person),
    concept!("企业家", Some("商业人物"), Domain::Person, leaf),
    concept!("银行家", Some("商业人物"), Domain::Person, leaf),
    concept!("执行官", Some("商业人物"), Domain::Person, leaf),
    concept!("战略官", Some("商业人物"), Domain::Person, leaf),
    concept!("分析师", Some("商业人物"), Domain::Person, leaf),
    concept!("政治人物", Some("人物"), Domain::Person),
    concept!("政治家", Some("政治人物"), Domain::Person, leaf),
    concept!("外交官", Some("政治人物"), Domain::Person, leaf),
    // ---------------- Work ----------------
    concept!("作品", None, Domain::Work),
    concept!("影视作品", Some("作品"), Domain::Work),
    concept!("电影", Some("影视作品"), Domain::Work),
    concept!("故事片", Some("电影"), Domain::Work, leaf),
    concept!("纪录片", Some("电影"), Domain::Work, leaf),
    concept!("动画片", Some("电影"), Domain::Work, leaf),
    concept!("动作片", Some("电影"), Domain::Work, leaf),
    concept!("爱情片", Some("电影"), Domain::Work, leaf),
    concept!("电视剧", Some("影视作品"), Domain::Work),
    concept!("古装剧", Some("电视剧"), Domain::Work, leaf),
    concept!("都市剧", Some("电视剧"), Domain::Work, leaf),
    concept!("音乐作品", Some("作品"), Domain::Work),
    concept!("歌曲", Some("音乐作品"), Domain::Work),
    concept!("流行歌曲", Some("歌曲"), Domain::Work, leaf),
    concept!("民谣歌曲", Some("歌曲"), Domain::Work, leaf),
    concept!("专辑", Some("音乐作品"), Domain::Work, leaf),
    concept!("文学作品", Some("作品"), Domain::Work),
    concept!("小说", Some("文学作品"), Domain::Work),
    concept!("长篇小说", Some("小说"), Domain::Work, leaf),
    concept!("短篇小说", Some("小说"), Domain::Work, leaf),
    concept!("武侠小说", Some("小说"), Domain::Work, leaf),
    concept!("诗集", Some("文学作品"), Domain::Work, leaf),
    concept!("散文集", Some("文学作品"), Domain::Work, leaf),
    concept!("游戏", Some("作品"), Domain::Work),
    concept!("网络游戏", Some("游戏"), Domain::Work, leaf),
    concept!("手机游戏", Some("游戏"), Domain::Work, leaf),
    concept!("软件", Some("作品"), Domain::Work),
    concept!("操作系统", Some("软件"), Domain::Work, leaf),
    concept!("应用软件", Some("软件"), Domain::Work, leaf),
    // ---------------- Organization ----------------
    concept!("机构", None, Domain::Organization),
    concept!("企业", Some("机构"), Domain::Organization),
    concept!("公司", Some("企业"), Domain::Organization),
    concept!("科技公司", Some("公司"), Domain::Organization, leaf),
    concept!("电影公司", Some("公司"), Domain::Organization, leaf),
    concept!("唱片公司", Some("公司"), Domain::Organization, leaf),
    concept!("银行", Some("企业"), Domain::Organization),
    concept!("商业银行", Some("银行"), Domain::Organization, leaf),
    concept!("学校", Some("机构"), Domain::Organization),
    concept!("大学", Some("学校"), Domain::Organization),
    concept!("综合性大学", Some("大学"), Domain::Organization, leaf),
    concept!("师范大学", Some("大学"), Domain::Organization, leaf),
    concept!("理工大学", Some("大学"), Domain::Organization, leaf),
    concept!("中学", Some("学校"), Domain::Organization, leaf),
    concept!("医院", Some("机构"), Domain::Organization),
    concept!("三甲医院", Some("医院"), Domain::Organization, leaf),
    concept!("研究所", Some("机构"), Domain::Organization, leaf),
    concept!("文化机构", Some("机构"), Domain::Organization),
    concept!("博物馆", Some("文化机构"), Domain::Organization, leaf),
    concept!("图书馆", Some("文化机构"), Domain::Organization, leaf),
    concept!("出版社", Some("文化机构"), Domain::Organization, leaf),
    concept!("电视台", Some("文化机构"), Domain::Organization, leaf),
    concept!("体育组织", Some("机构"), Domain::Organization),
    concept!("足球俱乐部", Some("体育组织"), Domain::Organization, leaf),
    concept!("篮球俱乐部", Some("体育组织"), Domain::Organization, leaf),
    concept!("乐队", Some("机构"), Domain::Organization, leaf),
    // ---------------- Place ----------------
    concept!("地点", None, Domain::Place),
    concept!("行政区", Some("地点"), Domain::Place),
    concept!("国家", Some("行政区"), Domain::Place),
    concept!("岛国", Some("国家"), Domain::Place, leaf),
    concept!("内陆国", Some("国家"), Domain::Place, leaf),
    concept!("城市", Some("行政区"), Domain::Place),
    concept!("省会城市", Some("城市"), Domain::Place, leaf),
    concept!("沿海城市", Some("城市"), Domain::Place, leaf),
    concept!("县", Some("行政区"), Domain::Place, leaf),
    concept!("自然景观", Some("地点"), Domain::Place),
    concept!("山峰", Some("自然景观"), Domain::Place, leaf),
    concept!("河流", Some("自然景观"), Domain::Place, leaf),
    concept!("湖泊", Some("自然景观"), Domain::Place, leaf),
    concept!("岛屿", Some("自然景观"), Domain::Place, leaf),
    // ---------------- Organism ----------------
    concept!("动物", None, Domain::Organism),
    concept!("哺乳动物", Some("动物"), Domain::Organism, leaf),
    concept!("鸟类", Some("动物"), Domain::Organism, leaf),
    concept!("鱼类", Some("动物"), Domain::Organism, leaf),
    concept!("昆虫", Some("动物"), Domain::Organism, leaf),
    concept!("爬行动物", Some("动物"), Domain::Organism, leaf),
    concept!("植物", None, Domain::Organism),
    concept!("乔木", Some("植物"), Domain::Organism, leaf),
    concept!("灌木", Some("植物"), Domain::Organism, leaf),
    concept!("草本植物", Some("植物"), Domain::Organism, leaf),
    concept!("花卉", Some("植物"), Domain::Organism, leaf),
    // ---------------- Product ----------------
    concept!("产品", None, Domain::Product),
    concept!("电子产品", Some("产品"), Domain::Product),
    concept!("手机", Some("电子产品"), Domain::Product),
    concept!("智能手机", Some("手机"), Domain::Product, leaf),
    concept!("相机", Some("电子产品"), Domain::Product, leaf),
    concept!("笔记本电脑", Some("电子产品"), Domain::Product, leaf),
    concept!("交通工具", Some("产品"), Domain::Product),
    concept!("汽车", Some("交通工具"), Domain::Product),
    concept!("轿车", Some("汽车"), Domain::Product, leaf),
    concept!("跑车", Some("汽车"), Domain::Product, leaf),
    concept!("电动汽车", Some("汽车"), Domain::Product, leaf),
    // ---------------- Food ----------------
    concept!("食品", None, Domain::Food),
    concept!("菜品", Some("食品"), Domain::Food),
    concept!("家常菜", Some("菜品"), Domain::Food, leaf),
    concept!("甜点", Some("菜品"), Domain::Food, leaf),
    concept!("饮品", Some("食品"), Domain::Food, leaf),
];

/// Indexed view over [`CONCEPTS`] with parent/child navigation.
#[derive(Debug)]
pub struct Ontology {
    by_name: HashMap<&'static str, usize>,
    children: Vec<Vec<usize>>,
    leaves: Vec<usize>,
}

impl Ontology {
    /// The process-wide ontology instance.
    pub fn global() -> &'static Ontology {
        static INSTANCE: OnceLock<Ontology> = OnceLock::new();
        INSTANCE.get_or_init(Ontology::build)
    }

    fn build() -> Ontology {
        let mut by_name = HashMap::new();
        for (i, c) in CONCEPTS.iter().enumerate() {
            let prev = by_name.insert(c.name, i);
            assert!(prev.is_none(), "duplicate concept {}", c.name);
        }
        let mut children = vec![Vec::new(); CONCEPTS.len()];
        for (i, c) in CONCEPTS.iter().enumerate() {
            if let Some(p) = c.parent {
                let pi = *by_name
                    .get(p)
                    .unwrap_or_else(|| panic!("unknown parent {p}"));
                children[pi].push(i);
            }
        }
        let leaves = CONCEPTS
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_leaf)
            .map(|(i, _)| i)
            .collect();
        Ontology {
            by_name,
            children,
            leaves,
        }
    }

    /// Looks up a concept spec by name.
    pub fn get(&self, name: &str) -> Option<&'static ConceptSpec> {
        self.by_name.get(name).map(|&i| &CONCEPTS[i])
    }

    /// Returns `true` when `name` is a gold concept.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Ancestor chain of `name` (parent, grandparent, …, root).
    pub fn ancestors(&self, name: &str) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut cur = self.get(name).and_then(|c| c.parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.get(p).and_then(|c| c.parent);
        }
        out
    }

    /// Leaf concepts of a domain.
    pub fn leaves_of(&self, domain: Domain) -> Vec<&'static ConceptSpec> {
        self.leaves
            .iter()
            .map(|&i| &CONCEPTS[i])
            .filter(|c| c.domain == domain)
            .collect()
    }

    /// All leaf concepts.
    pub fn all_leaves(&self) -> Vec<&'static ConceptSpec> {
        self.leaves.iter().map(|&i| &CONCEPTS[i]).collect()
    }

    /// Direct children of a concept.
    pub fn children_of(&self, name: &str) -> Vec<&'static str> {
        match self.by_name.get(name) {
            Some(&i) => self.children[i].iter().map(|&j| CONCEPTS[j].name).collect(),
            None => Vec::new(),
        }
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        CONCEPTS.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_builds_and_has_roots() {
        let o = Ontology::global();
        assert!(o.len() > 100);
        assert!(o.contains("人物"));
        assert!(o.contains("男演员"));
    }

    #[test]
    fn ancestors_walk_to_root() {
        let o = Ontology::global();
        assert_eq!(o.ancestors("男演员"), vec!["演员", "娱乐人物", "人物"]);
        assert!(o.ancestors("人物").is_empty());
    }

    #[test]
    fn leaves_have_domains() {
        let o = Ontology::global();
        let person_leaves = o.leaves_of(Domain::Person);
        assert!(person_leaves.len() >= 20);
        assert!(person_leaves.iter().all(|c| c.domain == Domain::Person));
        for d in Domain::ALL {
            assert!(!o.leaves_of(d).is_empty(), "domain {d:?} has no leaves");
        }
    }

    #[test]
    fn children_inverse_of_parent() {
        let o = Ontology::global();
        assert!(o.children_of("演员").contains(&"男演员"));
        assert!(o.children_of("男演员").is_empty());
    }

    #[test]
    fn no_concept_is_thematic() {
        // Gold concepts must avoid the 184-entry thematic lexicon, otherwise
        // verification rule 1 would delete correct edges by construction.
        for c in CONCEPTS {
            assert!(
                !cnp_text::lexicons::is_thematic(c.name),
                "gold concept {} collides with the thematic lexicon",
                c.name
            );
        }
    }

    #[test]
    fn every_parent_exists_and_no_cycles() {
        let o = Ontology::global();
        for c in CONCEPTS {
            if let Some(p) = c.parent {
                assert!(o.contains(p), "parent {p} of {} missing", c.name);
            }
            // ancestors() terminates (no cycle) and is short.
            assert!(o.ancestors(c.name).len() < 10);
        }
    }
}
