//! Wire-level integration tests: a real `cnp_server` on an ephemeral
//! port, real TCP clients, hostile bytes, admission-control saturation,
//! and a live snapshot hot-swap under concurrent traffic.

use cnp_serve::json::Json;
use cnp_serve::{
    wire, ListOptions, PageRequest, Query, QueryError, Response, TagOptions, TaxonomyService,
};
use cnp_server::{http, load, serve, LoadConfig, ProbeVocab, ServerConfig, ServerHandle};
use cnp_taxonomy::{DeltaOverlay, FrozenTaxonomy, IsAMeta, OverlayView, Source, TaxonomyStore};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Generation 1: 刘德华 is a 歌手, 张学友 does not exist yet.
fn store_a() -> TaxonomyStore {
    let mut s = TaxonomyStore::new();
    let liu = s.add_entity("刘德华", None);
    let singer = s.add_concept("歌手");
    let person = s.add_concept("人物");
    s.add_concept_is_a(singer, person, IsAMeta::new(Source::SubConcept, 0.9));
    s.add_entity_is_a(liu, singer, IsAMeta::new(Source::Tag, 0.9));
    s
}

/// Generation 2: 张学友 joins the taxonomy.
fn store_b() -> TaxonomyStore {
    let mut s = store_a();
    let zhang = s.add_entity("张学友", None);
    let singer = s.find_concept("歌手").unwrap();
    s.add_entity_is_a(zhang, singer, IsAMeta::new(Source::Tag, 0.95));
    s
}

fn snapshot_file(name: &str, store: &TaxonomyStore) -> PathBuf {
    let path = std::env::temp_dir().join(format!("cnp_wire_{}_{name}.cnpb", std::process::id()));
    FrozenTaxonomy::freeze(store).save_to_file(&path).unwrap();
    path
}

fn boot(store: TaxonomyStore, config: ServerConfig) -> ServerHandle {
    let service = Arc::new(TaxonomyService::from_store(store));
    serve(service, config).unwrap()
}

/// One request/response on a fresh connection.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    exchange_bytes(addr, method, path, body.as_bytes())
}

/// Like [`exchange`] but with a binary payload (delta sidecars).
fn exchange_bytes(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Json) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let payload = (!body.is_empty()).then_some(body);
    http::write_request(&mut writer, method, path, payload, false).unwrap();
    let response = http::read_client_response(&mut reader, http::MAX_BODY_BYTES)
        .unwrap()
        .expect("server closed without responding");
    let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    (response.status, doc)
}

fn post_query(addr: SocketAddr, query: &Query) -> (u16, Json) {
    exchange(
        addr,
        "POST",
        "/v1/query",
        &wire::encode_query(query).write(),
    )
}

#[test]
fn mixed_traffic_stays_generation_consistent_across_live_reload() {
    let path = snapshot_file("reload", &store_a());
    let handle = boot(
        store_a(),
        ServerConfig {
            // One worker per client plus headroom for the reload requests,
            // so persistent connections never starve each other.
            workers: 10,
            queue_capacity: 20,
            snapshot_path: Some(path.clone()),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let stop = Arc::clone(&stop);
            #[allow(clippy::disallowed_methods)]
            // raw client threads: this test attacks the server from outside the runtime
            std::thread::spawn(move || {
                // One persistent keep-alive connection per client thread.
                let stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                let mut observed = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    // Mixed traffic: half the threads probe the entity that
                    // only exists from generation 2, half a stable one.
                    let mention = if i % 2 == 0 { "张学友" } else { "刘德华" };
                    let body = wire::encode_query(&Query::men2ent(mention)).write();
                    http::write_request(
                        &mut writer,
                        "POST",
                        "/v1/query",
                        Some(body.as_bytes()),
                        true,
                    )
                    .unwrap();
                    let raw = http::read_client_response(&mut reader, http::MAX_BODY_BYTES)
                        .unwrap()
                        .expect("server closed a keep-alive connection");
                    let status = raw.status;
                    let doc = Json::parse(std::str::from_utf8(&raw.body).unwrap()).unwrap();
                    let response = wire::decode_response(&doc).unwrap();
                    // The answer must match the generation that served it.
                    match (mention, response.generation, &response.result) {
                        ("刘德华", _, Ok(Response::Senses(_))) => {}
                        ("张学友", 1, Err(QueryError::UnknownMention(_))) => {
                            assert_eq!(status, 404);
                        }
                        ("张学友", g, Ok(Response::Senses(_))) if g >= 2 => {}
                        other => panic!("generation-inconsistent answer: {other:?}"),
                    }
                    observed.push(response.generation);
                }
                observed
            })
        })
        .collect();

    // Let traffic flow on generation 1, then swap the snapshot file and
    // reload over the wire, mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    FrozenTaxonomy::freeze(&store_b())
        .save_to_file(&path)
        .unwrap();
    let (status, doc) = exchange(addr, "POST", "/admin/reload", "");
    assert_eq!(status, 200, "reload: {}", doc.write());
    assert_eq!(doc.get("generation").and_then(Json::as_u64), Some(2));
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);

    let mut saw_both = (false, false);
    for client in clients {
        let observed = client.join().unwrap();
        assert!(!observed.is_empty());
        // Generations are monotonic per client and span the swap.
        assert!(observed.windows(2).all(|w| w[0] <= w[1]));
        saw_both.0 |= observed.contains(&1);
        saw_both.1 |= observed.contains(&2);
    }
    assert!(
        saw_both.0 && saw_both.1,
        "traffic missed one side of the swap"
    );
    std::fs::remove_file(&path).ok();
    handle.shutdown();
}

/// The ingest-under-load gate: deltas land over the wire while eight
/// persistent clients hammer the server, with background compaction armed
/// at depth 2. Every answer must match the generation that served it —
/// readers see generation N or N+1, never a torn merge — and the stats
/// invariant `requests == ok + error` must hold once traffic drains.
#[test]
fn ingest_under_load_never_tears_a_generation() {
    let base = FrozenTaxonomy::freeze(&store_a());
    let service = Arc::new(TaxonomyService::new(OverlayView::new(base)));
    let handle = serve(
        service,
        ServerConfig {
            workers: 10,
            queue_capacity: 20,
            compact_threshold: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let stop = Arc::clone(&stop);
            #[allow(clippy::disallowed_methods)]
            // raw client threads: this test attacks the server from outside the runtime
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                let mut observed = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    // Half the threads probe the entity only the first
                    // delta introduces, half a stable one.
                    let mention = if i % 2 == 0 { "张学友" } else { "刘德华" };
                    let body = wire::encode_query(&Query::men2ent(mention)).write();
                    http::write_request(
                        &mut writer,
                        "POST",
                        "/v1/query",
                        Some(body.as_bytes()),
                        true,
                    )
                    .unwrap();
                    let raw = http::read_client_response(&mut reader, http::MAX_BODY_BYTES)
                        .unwrap()
                        .expect("server closed a keep-alive connection");
                    let doc = Json::parse(std::str::from_utf8(&raw.body).unwrap()).unwrap();
                    let response = wire::decode_response(&doc).unwrap();
                    // The answer must match the generation that served it:
                    // 张学友 exists exactly from the first ingest onwards.
                    match (mention, response.generation, &response.result) {
                        ("刘德华", _, Ok(Response::Senses(_))) => {}
                        ("张学友", 1, Err(QueryError::UnknownMention(_))) => {}
                        ("张学友", g, Ok(Response::Senses(_))) if g >= 2 => {}
                        other => panic!("generation-inconsistent answer: {other:?}"),
                    }
                    observed.push(response.generation);
                }
                observed
            })
        })
        .collect();

    // Let traffic flow on generation 1, then land two deltas mid-flight;
    // the second crosses the compaction threshold.
    std::thread::sleep(Duration::from_millis(100));
    let mut delta = DeltaOverlay::new();
    delta.add_entity("张学友", None);
    delta.upsert_entity_is_a("张学友", None, "歌手", IsAMeta::new(Source::Tag, 0.95));
    let (status, doc) = exchange_bytes(addr, "POST", "/admin/ingest", &delta.encode());
    assert_eq!(status, 200, "ingest: {}", doc.write());
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ingested"));
    assert_eq!(doc.get("generation").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("ops").and_then(Json::as_u64), Some(2));

    let mut delta = DeltaOverlay::new();
    delta.add_entity("王菲", None);
    delta.upsert_entity_is_a("王菲", None, "歌手", IsAMeta::new(Source::Tag, 0.9));
    let (status, doc) = exchange_bytes(addr, "POST", "/admin/ingest", &delta.encode());
    assert_eq!(status, 200, "ingest: {}", doc.write());
    assert_eq!(doc.get("generation").and_then(Json::as_u64), Some(3));

    // The background fold publishes as one more generation bump; wait for
    // it while the clients keep hammering.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.service().overlay_depth() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "compaction never landed"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);

    let mut saw_both = (false, false);
    for client in clients {
        let observed = client.join().unwrap();
        assert!(!observed.is_empty());
        // Generations are monotonic per connection and span the ingest.
        assert!(observed.windows(2).all(|w| w[0] <= w[1]));
        saw_both.0 |= observed.contains(&1);
        saw_both.1 |= observed.iter().any(|&g| g >= 2);
    }
    assert!(
        saw_both.0 && saw_both.1,
        "traffic missed one side of the ingest"
    );

    // The compacted world still serves both deltas' entities.
    let (status, doc) = post_query(addr, &Query::men2ent("王菲"));
    assert_eq!(status, 200);
    let response = wire::decode_response(&doc).unwrap();
    assert!(response.generation >= 4, "compaction did not bump");
    assert!(matches!(response.result, Ok(Response::Senses(_))));

    // A corrupt sidecar is refused with a typed 400 and no swap.
    let generation = handle.service().generation();
    let (status, doc) = exchange_bytes(addr, "POST", "/admin/ingest", b"CNPDgarbage");
    assert_eq!(status, 400);
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("badDelta")
    );
    assert_eq!(handle.service().generation(), generation);

    // Drained traffic satisfies the stats invariant.
    let stats = handle.stats();
    assert_eq!(stats.requests, stats.responses_ok + stats.responses_error);
    assert_eq!(stats.overloaded, 0);
    handle.shutdown();
}

#[test]
fn stale_cursor_is_refused_with_409_over_the_wire() {
    let path = snapshot_file("cursor", &store_b());
    let handle = boot(
        store_b(),
        ServerConfig {
            snapshot_path: Some(path.clone()),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // Mint a cursor on generation 1: page through 歌手's two entities.
    let page_one = Query::GetEntity {
        concept: "歌手".to_string(),
        options: ListOptions::transitive().with_page(PageRequest::first(1)),
    };
    let (status, doc) = post_query(addr, &page_one);
    assert_eq!(status, 200);
    let token = doc
        .get("result")
        .and_then(|r| r.get("next"))
        .and_then(Json::as_str)
        .expect("first page should have a next cursor")
        .to_string();

    // Hot-swap to generation 2, then replay the stale cursor.
    let (status, _) = exchange(addr, "POST", "/admin/reload", "");
    assert_eq!(status, 200);
    let stale = format!(
        r#"{{"op":"getEntity","concept":"歌手","options":{{"transitive":true,"limit":1,"cursor":"{token}"}}}}"#
    );
    let (status, doc) = exchange(addr, "POST", "/v1/query", &stale);
    assert_eq!(status, 409, "stale cursor: {}", doc.write());
    let error = doc.get("error").expect("typed error body");
    assert_eq!(
        error.get("kind").and_then(Json::as_str),
        Some("invalidCursor")
    );
    let cursor = error.get("cursor").expect("cursor detail");
    assert_eq!(
        cursor.get("kind").and_then(Json::as_str),
        Some("wrongGeneration")
    );
    assert_eq!(cursor.get("cursor").and_then(Json::as_u64), Some(1));
    assert_eq!(cursor.get("serving").and_then(Json::as_u64), Some(2));
    std::fs::remove_file(&path).ok();
    handle.shutdown();
}

#[test]
fn saturated_queue_returns_429_and_recovers() {
    // One worker, one queue slot: the third concurrent connection must be
    // refused by admission control, not buffered.
    let handle = boot(
        store_a(),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            read_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let body = wire::encode_query(&Query::men2ent("刘德华")).write();

    // Connection A parks the only worker: full headers, missing body.
    let mut park_worker = TcpStream::connect(addr).unwrap();
    write!(
        park_worker,
        "POST /v1/query HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .unwrap();
    park_worker.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Connection B occupies the single queue slot.
    let fill_queue = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Connection C: queue full -> canned 429 from the accept thread.
    let refused = TcpStream::connect(addr).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(refused);
    let response = http::read_client_response(&mut reader, http::MAX_BODY_BYTES)
        .unwrap()
        .expect("refused connection should still get a response");
    assert_eq!(response.status, 429);
    let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("overloaded")
    );
    assert!(!response.keep_alive);

    // Unblock A and B; both admitted connections are still served.
    park_worker.write_all(body.as_bytes()).unwrap();
    park_worker.flush().unwrap();
    park_worker
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(park_worker.try_clone().unwrap());
    let served = http::read_client_response(&mut reader, http::MAX_BODY_BYTES)
        .unwrap()
        .expect("parked connection should be served");
    assert_eq!(served.status, 200);

    let mut writer = BufWriter::new(fill_queue.try_clone().unwrap());
    http::write_request(
        &mut writer,
        "POST",
        "/v1/query",
        Some(body.as_bytes()),
        false,
    )
    .unwrap();
    fill_queue
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(fill_queue);
    let served = http::read_client_response(&mut reader, http::MAX_BODY_BYTES)
        .unwrap()
        .expect("queued connection should be served");
    assert_eq!(served.status, 200);

    assert_eq!(handle.stats().overloaded, 1);
    handle.shutdown();
}

#[test]
fn hostile_bytes_get_typed_refusals_and_the_server_survives() {
    let handle = boot(
        store_a(),
        ServerConfig {
            read_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let hostile: &[(&[u8], u16)] = &[
        (b"GARBAGE\r\n\r\n", 400),
        (b"\x00\x01\x02\x03\r\n\r\n", 400),
        (
            b"POST /v1/query HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n",
            413,
        ),
        (b"DELETE /v1/query HTTP/1.1\r\n\r\n", 405),
        (
            b"POST /v1/query HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            400,
        ),
        (b"POST /v1/query HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
    ];
    for (bytes, expected) in hostile {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(bytes).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let response = http::read_client_response(&mut reader, http::MAX_BODY_BYTES)
            .unwrap()
            .unwrap_or_else(|| panic!("no response for {bytes:?}"));
        assert_eq!(response.status, *expected, "for {bytes:?}");
        assert!(
            !response.keep_alive,
            "hostile input must close the connection"
        );
    }

    // A truncated request (headers never finish) just times out and closes.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /v1/query HTTP/1.1\r\ncontent-le")
        .unwrap();
    stream.flush().unwrap();
    let mut sink = Vec::new();
    stream.read_to_end(&mut sink).unwrap();
    assert!(sink.is_empty(), "truncated request got a reply: {sink:?}");

    // After all of that, the server still serves clean traffic.
    let (status, doc) = post_query(addr, &Query::men2ent("刘德华"));
    assert_eq!(status, 200);
    assert!(wire::decode_response(&doc).unwrap().result.is_ok());
    assert!(handle.stats().malformed >= hostile.len() as u64);
    handle.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let handle = boot(store_a(), ServerConfig::default());
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let body = wire::encode_query(&Query::men2ent("刘德华")).write();
    for i in 0..50 {
        http::write_request(
            &mut writer,
            "POST",
            "/v1/query",
            Some(body.as_bytes()),
            true,
        )
        .unwrap();
        let response = http::read_client_response(&mut reader, http::MAX_BODY_BYTES)
            .unwrap()
            .unwrap_or_else(|| panic!("request {i}: connection dropped"));
        assert_eq!(response.status, 200);
        assert!(response.keep_alive);
    }
    let stats = handle.stats();
    assert_eq!(stats.connections, 1, "keep-alive reused the connection");
    assert_eq!(stats.requests, 50);
    assert_eq!(stats.responses_ok, 50);
    handle.shutdown();
}

#[test]
fn batch_endpoint_answers_from_one_generation() {
    let handle = boot(store_b(), ServerConfig::default());
    let addr = handle.addr();
    let queries = [
        Query::men2ent("刘德华"),
        Query::men2ent("张学友"),
        Query::IsA {
            sub: "刘德华".to_string(),
            sup: "人物".to_string(),
            transitive: true,
        },
    ];
    let body = Json::Obj(vec![(
        "queries".to_string(),
        Json::Arr(queries.iter().map(wire::encode_query).collect()),
    )]);
    let (status, doc) = exchange(addr, "POST", "/v1/batch", &body.write());
    assert_eq!(status, 200);
    assert_eq!(doc.get("generation").and_then(Json::as_u64), Some(1));
    let responses = doc.get("responses").and_then(Json::as_arr).unwrap();
    assert_eq!(responses.len(), queries.len());
    for item in responses {
        let response = wire::decode_response(item).unwrap();
        assert_eq!(response.generation, 1);
        assert!(response.result.is_ok());
    }
    // Oversized batches are refused with 413.
    let huge = format!(
        r#"{{"queries":[{}]}}"#,
        vec![wire::encode_query(&queries[0]).write(); cnp_server::MAX_BATCH + 1].join(",")
    );
    let (status, _) = exchange(addr, "POST", "/v1/batch", &huge);
    assert_eq!(status, 413);
    handle.shutdown();
}

/// The tagging workload, end to end on the wire: the dedicated `/v1/tag`
/// endpoint, the same ops through `/v1/query` and `/v1/batch`, hostile
/// bodies, and the per-kind serving counters in `/v1/health`.
#[test]
fn tag_endpoint_serves_documents_and_counts_its_kind() {
    let handle = boot(store_b(), ServerConfig::default());
    let addr = handle.addr();

    // Tag a document over the dedicated endpoint (op defaults to "tag").
    let (status, doc) = exchange(addr, "POST", "/v1/tag", r#"{"text":"刘德华和张学友。"}"#);
    assert_eq!(status, 200, "tag: {}", doc.write());
    let response = wire::decode_response(&doc).unwrap();
    assert_eq!(response.generation, 1);
    let Ok(Response::Tags(output)) = response.result else {
        panic!("expected a tags result: {:?}", response.result);
    };
    assert!(!output.spans.is_empty(), "no evidence spans");
    assert!(
        output.concepts.iter().any(|hit| hit.name == "歌手"),
        "tagger missed 歌手: {:?}",
        output.concepts
    );

    // op:"classify" selects the concepts-only variant on the same route.
    let (status, doc) = exchange(
        addr,
        "POST",
        "/v1/tag",
        r#"{"op":"classify","text":"刘德华","options":{"topK":1}}"#,
    );
    assert_eq!(status, 200);
    let response = wire::decode_response(&doc).unwrap();
    let Ok(Response::Classified(hits)) = response.result else {
        panic!("expected a classified result: {:?}", response.result);
    };
    assert_eq!(hits.len(), 1);

    // The same query family flows through /v1/query …
    let tag_query = Query::Tag {
        text: "刘德华".to_string(),
        options: TagOptions::default(),
    };
    let (status, doc) = post_query(addr, &tag_query);
    assert_eq!(status, 200);
    assert!(matches!(
        wire::decode_response(&doc).unwrap().result,
        Ok(Response::Tags(_))
    ));

    // … and /v1/batch, mixed with lookup traffic, on one generation.
    let batch = Json::Obj(vec![(
        "queries".to_string(),
        Json::Arr(vec![
            wire::encode_query(&Query::men2ent("刘德华")),
            wire::encode_query(&tag_query),
        ]),
    )]);
    let (status, doc) = exchange(addr, "POST", "/v1/batch", &batch.write());
    assert_eq!(status, 200);
    let responses = doc.get("responses").and_then(Json::as_arr).unwrap();
    assert_eq!(responses.len(), 2);
    assert!(matches!(
        wire::decode_response(&responses[1]).unwrap().result,
        Ok(Response::Tags(_))
    ));

    // Unknown text is an *empty* answer, never an error.
    let (status, doc) = exchange(addr, "POST", "/v1/tag", r#"{"text":"火星话xyzzy"}"#);
    assert_eq!(status, 200);
    let response = wire::decode_response(&doc).unwrap();
    let Ok(Response::Tags(output)) = response.result else {
        panic!("unknown text must still answer Ok");
    };
    assert!(output.concepts.is_empty());

    // Hostile bodies get typed 400s; the wrong method gets 405.
    let hostile = [
        "not json at all",
        r#"{"nota":"tagquery"}"#,
        r#"{"text":7}"#,
        r#"{"op":"men2ent","text":"刘德华"}"#,
        r#"{"text":"刘德华","options":{"topK":"many"}}"#,
        "{\"text\":\"\u{0}\\u0000黑客\u{7}\"",
    ];
    for bad in hostile {
        let (status, doc) = exchange(addr, "POST", "/v1/tag", bad);
        assert_eq!(
            status,
            400,
            "accepted hostile body {bad:?}: {}",
            doc.write()
        );
    }
    let (status, _) = exchange(addr, "GET", "/v1/tag", "");
    assert_eq!(status, 405);

    // The per-kind counters: 4 tag-kind requests (3 on /v1/tag that
    // decoded, 1 tag op on /v1/query), 1 lookup (inside the batch does
    // not count — the batch itself is the unit), 1 batch. Hostile bodies
    // and the 405 carry no kind.
    let stats = handle.stats();
    assert_eq!(stats.kind_tag, 4);
    assert_eq!(stats.kind_lookup, 0);
    assert_eq!(stats.kind_batch, 1);
    assert!(stats.kinds_total() <= stats.requests);

    // /v1/health reports the same counters over the wire.
    let (status, doc) = exchange(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    let reported = doc.get("stats").expect("stats section");
    assert_eq!(reported.get("kindTag").and_then(Json::as_u64), Some(4));
    assert_eq!(reported.get("kindBatch").and_then(Json::as_u64), Some(1));
    // The health probe itself is a request with no kind, so the sum of
    // kinds stays strictly below requests here.
    let requests = reported.get("requests").and_then(Json::as_u64).unwrap();
    assert!(requests > 5);
    handle.shutdown();
}

#[test]
fn load_harness_completes_on_runtime_tasks_and_survives_dead_servers() {
    let handle = boot(store_a(), ServerConfig::default());
    let vocab = ProbeVocab {
        mentions: vec!["刘德华".to_string()],
        entity_keys: vec!["刘德华（歌手）".to_string()],
        concepts: vec!["歌手".to_string()],
    };
    // More connections than the remainder exercises the uneven split
    // (10 requests over 4 tasks = 3 + 3 + 2 + 2). Two deltas ride along
    // on the ingest task and must land as generations 2 and 3.
    let report = load::run(
        &LoadConfig {
            addr: handle.addr().to_string(),
            connections: 4,
            requests: 10,
            seed: 7,
            ingest_deltas: 2,
            tag_ratio: 0.0,
        },
        &vocab,
    );
    assert_eq!(report.counts.protocol_error, 0);
    assert_eq!(report.counts.overloaded, 0);
    assert_eq!(report.counts.ok + report.counts.query_error, 10);
    assert_eq!(report.latencies_us.len(), 10);
    let ingest = report.ingest.as_ref().expect("ingest stats");
    assert_eq!((ingest.ok, ingest.failed), (2, 0));
    assert_eq!(ingest.generations, [2, 3]);
    assert!(report.check(None).is_ok());

    // A mixed tag/lookup run drives /v1/tag through the harness: every
    // request served, zero tag protocol errors, and the per-kind buckets
    // partition the latencies.
    let report = load::run(
        &LoadConfig {
            addr: handle.addr().to_string(),
            connections: 2,
            requests: 40,
            seed: 11,
            ingest_deltas: 0,
            tag_ratio: 0.5,
        },
        &vocab,
    );
    assert_eq!(report.counts.protocol_error, 0);
    assert_eq!(report.counts.tag_protocol_error, 0);
    assert_eq!(report.counts.ok + report.counts.query_error, 40);
    assert!(report.tag_issued > 0, "tag ratio 0.5 issued no tag traffic");
    assert_eq!(report.tag_latencies_us.len() as u64, report.tag_issued);
    assert_eq!(
        report.lookup_latencies_us.len() + report.tag_latencies_us.len(),
        report.latencies_us.len()
    );
    assert!(report.check(None).is_ok());
    handle.shutdown();

    // Nobody listening: every exchange must come back as a typed wire
    // failure. (The pre-fix client expected a live connection and
    // panicked instead of reporting.)
    let report = load::run(
        &LoadConfig {
            addr: "127.0.0.1:9".to_string(),
            connections: 2,
            requests: 6,
            seed: 7,
            ingest_deltas: 0,
            tag_ratio: 0.0,
        },
        &vocab,
    );
    assert_eq!(report.counts.protocol_error, 6);
    assert_eq!(report.counts.ok, 0);
    assert!(report.latencies_us.is_empty());
}
