//! A minimal, hardened HTTP/1.1 implementation — just enough protocol for
//! the serving front-end, with the snapshot decoder's hostile-input
//! discipline (PR 4): every length is bounded *before* allocation, a
//! malformed or oversized request is a typed error (mapped to 400/413/405
//! by the server), and no byte stream, however truncated or adversarial,
//! can panic a worker.
//!
//! Scope (deliberate): `GET`/`POST`, `Content-Length` framing only (no
//! chunked transfer encoding — a request advertising one is refused),
//! HTTP/1.0 and 1.1 with standard keep-alive defaults. Both directions
//! are implemented — [`read_request`]/[`write_response`] for the server,
//! [`write_request`]/[`read_client_response`] for the load harness — so
//! the two ends of the wire can never drift apart.

use std::io::{self, BufRead, Write};

/// Hard cap on the request line (`GET /path HTTP/1.1`).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Hard cap on a single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Hard cap on the number of headers.
pub const MAX_HEADERS: usize = 64;
/// Default hard cap on a request body; [`crate::ServerConfig`] can lower
/// it, never raise it past this.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request (or client-side response) could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes violate HTTP framing; the connection cannot be re-synced
    /// and is closed after an error response. Maps to `400`.
    Malformed(&'static str),
    /// A line or the header count exceeded its hard cap. Maps to `400`,
    /// and the connection closes.
    TooLarge(&'static str),
    /// The declared body length exceeds the server's cap; refused before
    /// any allocation. Maps to `413`.
    BodyTooLarge,
    /// A syntactically valid method this server does not implement.
    /// Maps to `405`.
    UnsupportedMethod,
    /// The underlying socket failed (including read timeouts on idle
    /// keep-alive connections). No response is written.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::UnsupportedMethod => write!(f, "unsupported method"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET` or `POST` (anything else is [`HttpError::UnsupportedMethod`]).
    pub method: String,
    /// The request target, e.g. `/v1/query`.
    pub target: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Header name/value pairs in wire order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Reads one line (up to CRLF or LF) with a hard byte cap, without
/// buffering more than the line itself. Returns `None` on immediate,
/// clean EOF — how a keep-alive peer signals it is done.
fn read_line_bounded(
    reader: &mut impl BufRead,
    max: usize,
    what: &'static str,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        };
        if available.is_empty() {
            // EOF: clean only if nothing of the line has arrived yet.
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Malformed("unexpected end of stream"));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if line.len() + take > max + 2 {
            return Err(HttpError::TooLarge(what));
        }
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    if line.len() > max {
        return Err(HttpError::TooLarge(what));
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| HttpError::Malformed("non-UTF-8 bytes in header section"))
}

/// Shared header-section reader: `(name, value)` pairs until the blank
/// line, with caps on line length and header count.
fn read_headers(reader: &mut impl BufRead) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line_bounded(reader, MAX_HEADER_LINE, "header line")? else {
            return Err(HttpError::Malformed("stream ended inside headers"));
        };
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without ':'"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("invalid header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
}

/// Parses the `Content-Length` header (if any) against `max_body` and
/// reads exactly that many body bytes.
fn read_body(
    reader: &mut impl BufRead,
    headers: &[(String, String)],
    max_body: usize,
) -> Result<Vec<u8>, HttpError> {
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::Malformed("transfer-encoding not supported"));
    }
    let Some((_, len)) = headers.iter().find(|(k, _)| k == "content-length") else {
        return Ok(Vec::new());
    };
    let len: usize = len
        .parse()
        .map_err(|_| HttpError::Malformed("invalid content-length"))?;
    if len > max_body {
        return Err(HttpError::BodyTooLarge);
    }
    // cnp-lint: allow(capped-decode) reason="len > max_body was rejected two lines up, so this allocation is bounded by the configured body cap"
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => HttpError::Malformed("body shorter than content-length"),
        _ => HttpError::Io(e),
    })?;
    Ok(body)
}

/// Reads one request from a connection. `Ok(None)` is a clean end of the
/// keep-alive stream (EOF before any request byte).
pub fn read_request(
    reader: &mut impl BufRead,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line_bounded(reader, MAX_REQUEST_LINE, "request line")? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed("request line"));
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::Malformed("http version")),
    };
    if !matches!(method, "GET" | "POST") {
        // Drain the header section so an error response can be written
        // against a known stream position; the connection closes after.
        let _ = read_headers(reader);
        return Err(HttpError::UnsupportedMethod);
    }
    if target.is_empty() || !target.starts_with('/') {
        return Err(HttpError::Malformed("request target"));
    }
    let headers = read_headers(reader)?;
    let body = read_body(reader, &headers, max_body.min(MAX_BODY_BYTES))?;
    Ok(Some(Request {
        method: method.to_string(),
        target: target.to_string(),
        http11,
        headers,
        body,
    }))
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response with `Content-Length` framing.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry_after = if status == 429 {
        "Retry-After: 1\r\n"
    } else {
        ""
    };
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n{retry_after}\r\n",
        reason(status),
        body.len(),
    )?;
    writer.write_all(body)?;
    writer.flush()
}

// ----- client side (used by cnp_load and the integration tests) ------------

/// Writes a request with optional JSON body.
pub fn write_request(
    writer: &mut impl Write,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    match body {
        Some(body) => {
            write!(
                writer,
                "{method} {target} HTTP/1.1\r\nHost: cnp\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
                body.len(),
            )?;
            writer.write_all(body)?;
        }
        None => {
            write!(
                writer,
                "{method} {target} HTTP/1.1\r\nHost: cnp\r\nConnection: {connection}\r\n\r\n",
            )?;
        }
    }
    writer.flush()
}

/// A response as seen by the client.
#[derive(Debug)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Whether the server intends to keep the connection open.
    pub keep_alive: bool,
}

/// Reads one response from a connection; `Ok(None)` means the server
/// closed cleanly before a status line.
pub fn read_client_response(
    reader: &mut impl BufRead,
    max_body: usize,
) -> Result<Option<ClientResponse>, HttpError> {
    let Some(line) = read_line_bounded(reader, MAX_REQUEST_LINE, "status line")? else {
        return Ok(None);
    };
    let mut parts = line.splitn(3, ' ');
    let (Some(version), Some(status), _) = (parts.next(), parts.next(), parts.next()) else {
        return Err(HttpError::Malformed("status line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("http version"));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| HttpError::Malformed("status code"))?;
    let headers = read_headers(reader)?;
    let body = read_body(reader, &headers, max_body)?;
    let keep_alive = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map_or(true, |(_, v)| !v.eq_ignore_ascii_case("close"));
    Ok(Some(ClientResponse {
        status,
        body,
        keep_alive,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes), MAX_BODY_BYTES)
    }

    #[test]
    fn request_with_body_parses() {
        let req = parse(b"POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/query");
        assert!(req.http11);
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive());
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse(b"GET /v1/health HTTP/1.1\nHost: x\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.target, "/v1/health");
        assert!(req.body.is_empty());
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn truncated_streams_are_malformed_not_panics() {
        // Every prefix of a valid request must parse to a typed error (or
        // clean EOF at offset 0), never panic.
        let full = b"POST /v1/query HTTP/1.1\r\nContent-Length: 5\r\nX-A: b\r\n\r\nhello";
        for cut in 1..full.len() {
            match parse(&full[..cut]) {
                Ok(None) | Err(_) => {}
                Ok(Some(_)) => {
                    assert_eq!(cut, full.len(), "prefix of {cut} bytes parsed as complete")
                }
            }
        }
        assert!(parse(full).unwrap().is_some());
    }

    #[test]
    fn hostile_requests_are_typed_errors() {
        let cases: &[(&[u8], &str)] = &[
            (b"GARBAGE\r\n\r\n", "no spaces"),
            (b"GET /\r\n\r\n", "missing version"),
            (b"GET / HTTP/2.0\r\n\r\n", "unsupported version"),
            (b"GET noslash HTTP/1.1\r\n\r\n", "target without slash"),
            (b"GET / HTTP/1.1 extra\r\n\r\n", "four-part request line"),
            (
                b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",
                "header sans colon",
            ),
            (b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n", "space in name"),
            (b"GET / HTTP/1.1\r\n: empty\r\n\r\n", "empty name"),
            (
                b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
                "non-numeric length",
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
                "negative length",
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
                "body shorter than declared",
            ),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                "chunked encoding",
            ),
            (b"GET / HTTP/1.1\r\nX: \xff\xfe\r\n\r\n", "non-UTF-8 header"),
        ];
        for (bytes, what) in cases {
            assert!(
                matches!(parse(bytes), Err(HttpError::Malformed(_))),
                "{what} not rejected as malformed"
            );
        }
    }

    #[test]
    fn oversized_inputs_are_too_large() {
        // Request line over the cap.
        let mut line = b"GET /".to_vec();
        line.extend(std::iter::repeat(b'a').take(MAX_REQUEST_LINE + 10));
        line.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(parse(&line), Err(HttpError::TooLarge(_))));

        // Declared body over the cap — rejected before allocation.
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", u64::MAX);
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(HttpError::Malformed(_)) | Err(HttpError::BodyTooLarge)
        ));
        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(big.as_bytes()),
            Err(HttpError::BodyTooLarge)
        ));

        // Header flood over the count cap.
        let mut flood = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 5) {
            flood.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
        }
        flood.extend_from_slice(b"\r\n");
        assert!(matches!(parse(&flood), Err(HttpError::TooLarge(_))));

        // One endless header line over the line cap.
        let mut long = b"GET / HTTP/1.1\r\nX-Long: ".to_vec();
        long.extend(std::iter::repeat(b'a').take(MAX_HEADER_LINE + 10));
        long.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse(&long), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn per_server_body_cap_is_respected() {
        let req = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        let mut reader = BufReader::new(&req[..]);
        assert!(matches!(
            read_request(&mut reader, 50),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn unsupported_methods_are_405_not_400() {
        assert!(matches!(
            parse(b"BREW /coffee HTTP/1.1\r\n\r\n"),
            Err(HttpError::UnsupportedMethod)
        ));
        assert!(matches!(
            parse(b"DELETE /v1/query HTTP/1.1\r\nHost: x\r\n\r\n"),
            Err(HttpError::UnsupportedMethod)
        ));
    }

    #[test]
    fn random_bytes_never_panic_the_parser() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..500 {
            let len = rng.gen_range(0usize..600);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
            let _ = parse(&bytes); // any Result is fine; a panic is not
        }
        // Mostly-valid mutations: flip bytes of a well-formed request.
        let good = b"POST /v1/query HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}".to_vec();
        for i in 0..good.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut mutated = good.clone();
                mutated[i] ^= flip;
                let _ = parse(&mutated);
            }
        }
    }

    #[test]
    fn response_round_trips_to_client_parser() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, br#"{"ok":true}"#, true).unwrap();
        let resp = read_client_response(&mut BufReader::new(&wire[..]), MAX_BODY_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, br#"{"ok":true}"#);
        assert!(resp.keep_alive);

        let mut wire = Vec::new();
        write_response(&mut wire, 429, b"{}", false).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("Retry-After: 1"));
        let resp = read_client_response(&mut BufReader::new(&wire[..]), MAX_BODY_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(resp.status, 429);
        assert!(!resp.keep_alive);
    }

    #[test]
    fn request_writer_round_trips_to_request_parser() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/v1/query", Some(b"{}"), true).unwrap();
        let req = parse(&wire).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{}");
        assert!(req.keep_alive());

        let mut wire = Vec::new();
        write_request(&mut wire, "GET", "/v1/health", None, false).unwrap();
        let req = parse(&wire).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive());
    }
}
