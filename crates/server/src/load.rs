//! The load harness behind the `cnp_load` binary: drive N concurrent
//! connections of mixed Table II traffic at a running [`crate::serve`]
//! front-end, measure end-to-end latency, and emit a machine-readable
//! JSON report — the artifact CI archives and future PRs regress against.
//!
//! Determinism: the workload is a pure function of `(vocab, seed,
//! connections, requests)`. Each connection gets its own
//! `StdRng::seed_from_u64(seed + index)`, so two runs against the same
//! snapshot issue byte-identical query streams (timing, of course,
//! varies).

use crate::http;
use cnp_serve::json::Json;
use cnp_serve::{wire, ListOptions, PageRequest, Query, TagOptions};
use cnp_taxonomy::{DeltaOverlay, FrozenTaxonomy, IsAMeta, PersistError, Snapshot, Source};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Query names in the workload mix, in emission-weight order.
pub const MIX_OPS: [&str; 7] = [
    "men2ent",
    "getConceptByMention",
    "getEntity",
    "getConcept",
    "mentionSenses",
    "isA",
    "ancestorsOf",
];

/// Relative weights of [`MIX_OPS`] — the Table II read mix: mention
/// resolution dominates (the paper reports 43.9 M `men2ent` calls, §V),
/// concept/entity listing follows, navigation queries trail.
pub const MIX_WEIGHTS: [u32; 7] = [30, 20, 20, 10, 10, 5, 5];

/// The probe vocabulary the generator draws from: names that exist in the
/// snapshot being served, so the expected outcome of every query is `Ok`.
#[derive(Debug, Clone)]
pub struct ProbeVocab {
    /// Mentions that resolve to at least one sense with concepts.
    pub mentions: Vec<String>,
    /// Full entity display keys.
    pub entity_keys: Vec<String>,
    /// Concepts with at least one hyponym entity.
    pub concepts: Vec<String>,
}

impl ProbeVocab {
    /// Harvests a probe vocabulary from a frozen snapshot (bounded: at
    /// most 512 of each, in snapshot id order — deterministic).
    pub fn from_frozen(f: &FrozenTaxonomy) -> ProbeVocab {
        const CAP: usize = 512;
        let mut mentions = Vec::new();
        let mut entity_keys = Vec::new();
        for e in f.entity_ids() {
            if f.concepts_of(e).is_empty() {
                continue;
            }
            if mentions.len() < CAP {
                mentions.push(f.resolve(f.entity(e).name).to_string());
            }
            if entity_keys.len() < CAP {
                entity_keys.push(f.entity_key(e));
            }
            if mentions.len() >= CAP && entity_keys.len() >= CAP {
                break;
            }
        }
        let concepts = f
            .concept_ids()
            .filter(|&c| !f.entities_of(c).is_empty())
            .take(CAP)
            .map(|c| f.concept_name(c).to_string())
            .collect();
        ProbeVocab {
            mentions,
            entity_keys,
            concepts,
        }
    }

    /// [`ProbeVocab::from_frozen`] on a snapshot file of any format.
    pub fn from_snapshot_file(path: &Path) -> Result<ProbeVocab, PersistError> {
        Ok(Self::from_frozen(
            &Snapshot::load_from_file(path)?.into_frozen()?,
        ))
    }

    /// Whether the vocabulary can drive the full mix.
    pub fn is_usable(&self) -> bool {
        !self.mentions.is_empty() && !self.entity_keys.is_empty() && !self.concepts.is_empty()
    }

    fn pick<'a>(&self, pool: &'a [String], rng: &mut StdRng) -> &'a str {
        &pool[rng.gen_range(0..pool.len())]
    }

    /// The next document of the deterministic tagging stream: a short
    /// synthetic text stitched from snapshot mentions, so the tagger hits
    /// real vocabulary (and pays real segmentation + scoring cost) on
    /// every request.
    pub fn next_tag_query(&self, rng: &mut StdRng) -> Query {
        let n = rng.gen_range(2..=4);
        let mut text = String::new();
        for k in 0..n {
            if k > 0 {
                text.push_str(if k % 2 == 0 { "和" } else { "、" });
            }
            text.push_str(self.pick(&self.mentions, rng));
        }
        text.push('。');
        Query::Tag {
            text,
            options: TagOptions::default(),
        }
    }

    /// The `index`-th query of the deterministic stream for `rng`.
    pub fn next_query(&self, rng: &mut StdRng) -> Query {
        let total: u32 = MIX_WEIGHTS.iter().sum();
        let mut roll = rng.gen_range(0..total);
        // cnp-lint: allow(no-panic-serving-path) reason="MIX_OPS is a non-empty const array; [0] is the fallback before the weighted scan"
        let mut op = MIX_OPS[0];
        for (name, weight) in MIX_OPS.iter().zip(MIX_WEIGHTS) {
            if roll < weight {
                op = name;
                break;
            }
            roll -= weight;
        }
        match op {
            "men2ent" => Query::men2ent(self.pick(&self.mentions, rng)),
            "getConceptByMention" => Query::GetConceptByMention {
                mention: self.pick(&self.mentions, rng).to_string(),
                options: ListOptions::transitive(),
            },
            "getEntity" => Query::GetEntity {
                concept: self.pick(&self.concepts, rng).to_string(),
                options: ListOptions::transitive().with_page(PageRequest::first(10)),
            },
            "getConcept" => Query::GetConcept {
                entity: self.pick(&self.entity_keys, rng).to_string(),
                options: ListOptions::transitive(),
            },
            "mentionSenses" => Query::MentionSenses {
                mention: self.pick(&self.mentions, rng).to_string(),
            },
            "isA" => Query::IsA {
                sub: self.pick(&self.mentions, rng).to_string(),
                sup: self.pick(&self.concepts, rng).to_string(),
                transitive: true,
            },
            _ => Query::AncestorsOf {
                concept: self.pick(&self.concepts, rng).to_string(),
            },
        }
    }
}

/// Workload shape for [`run`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections (one runtime task each).
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Workload seed; same seed ⇒ same query stream.
    pub seed: u64,
    /// Delta sidecars to `POST /admin/ingest` *while* the query workload
    /// runs (`0` disables the ingest phase). Each delta adds a batch of
    /// synthetic entities under existing vocabulary concepts, so every
    /// apply is a real generation bump under live reads.
    pub ingest_deltas: usize,
    /// Fraction of requests issued as tagging traffic against `/v1/tag`
    /// (`0.0` disables the tag workload, `1.0` is tag-only). Tag
    /// documents are synthesized deterministically from the probe
    /// vocabulary's mentions.
    pub tag_ratio: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7077".to_string(),
            connections: 8,
            requests: 4000,
            seed: 42,
            ingest_deltas: 0,
            tag_ratio: 0.0,
        }
    }
}

/// Outcome counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadCounts {
    /// Requests that produced a parseable `200` envelope.
    pub ok: u64,
    /// Typed query refusals (404/400/409 with a protocol error body) —
    /// served answers, counted separately from wire failures.
    pub query_error: u64,
    /// `429` admission refusals.
    pub overloaded: u64,
    /// Anything that violates the protocol: connect/write/read failures,
    /// unparseable responses, unexpected statuses.
    pub protocol_error: u64,
    /// Subset of [`LoadCounts::protocol_error`] incurred by tag requests
    /// — gated to zero by the serving-load smoke, independently of the
    /// lookup traffic.
    pub tag_protocol_error: u64,
}

/// The measured outcome of the optional ingest phase.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Deltas acknowledged with `200 {"status":"ingested"}`.
    pub ok: u64,
    /// Deltas refused or lost on the wire.
    pub failed: u64,
    /// Wire-level overlay-apply latencies in microseconds, sorted
    /// ascending (decode + fold + swap as the client observes it).
    pub apply_latencies_us: Vec<u64>,
    /// Generations the acknowledgements reported, in apply order.
    pub generations: Vec<u64>,
}

/// The measured result of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Echo of the workload shape.
    pub config: LoadConfig,
    /// Outcome counters (summing to `config.requests`).
    pub counts: LoadCounts,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Served-request latencies in microseconds, sorted ascending
    /// (lookup and tag traffic merged).
    pub latencies_us: Vec<u64>,
    /// Served lookup-request latencies only, sorted ascending.
    pub lookup_latencies_us: Vec<u64>,
    /// Served tag-request latencies only, sorted ascending.
    pub tag_latencies_us: Vec<u64>,
    /// Tag requests issued (served or not).
    pub tag_issued: u64,
    /// Per-op issue counts, aligned with [`MIX_OPS`].
    pub per_op: [u64; 7],
    /// Ingest-phase outcome; `None` when `ingest_deltas == 0`.
    pub ingest: Option<IngestStats>,
}

/// The `q`-quantile of an ascending-sorted latency vector.
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (q * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

impl LoadReport {
    /// Served requests (ok + typed query errors) per second.
    pub fn qps(&self) -> f64 {
        let served = self.counts.ok + self.counts.query_error;
        if self.elapsed.as_secs_f64() > 0.0 {
            served as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }

    /// The `q`-quantile latency in microseconds (e.g. `0.99` for p99),
    /// over all served traffic.
    pub fn percentile_us(&self, q: f64) -> u64 {
        percentile(&self.latencies_us, q)
    }

    /// [`LoadReport::percentile_us`] over the tag traffic only.
    pub fn tag_percentile_us(&self, q: f64) -> u64 {
        percentile(&self.tag_latencies_us, q)
    }

    /// Mean served latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64
    }

    /// The machine-readable report (the `BENCH_*.json` `load` section).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "workload".to_string(),
                Json::Obj(vec![
                    ("addr".to_string(), Json::str(self.config.addr.clone())),
                    (
                        "connections".to_string(),
                        Json::num(self.config.connections as f64),
                    ),
                    (
                        "requests".to_string(),
                        Json::num(self.config.requests as f64),
                    ),
                    ("seed".to_string(), Json::num(self.config.seed as f64)),
                    ("tagRatio".to_string(), Json::num(self.config.tag_ratio)),
                ]),
            ),
            (
                "counts".to_string(),
                Json::Obj(vec![
                    ("ok".to_string(), Json::num(self.counts.ok as f64)),
                    (
                        "queryError".to_string(),
                        Json::num(self.counts.query_error as f64),
                    ),
                    (
                        "overloaded".to_string(),
                        Json::num(self.counts.overloaded as f64),
                    ),
                    (
                        "protocolError".to_string(),
                        Json::num(self.counts.protocol_error as f64),
                    ),
                    (
                        "tagProtocolError".to_string(),
                        Json::num(self.counts.tag_protocol_error as f64),
                    ),
                ]),
            ),
            (
                "latencyByKindUs".to_string(),
                Json::Obj(
                    [
                        ("lookup", &self.lookup_latencies_us),
                        ("tag", &self.tag_latencies_us),
                    ]
                    .into_iter()
                    .map(|(kind, sorted)| {
                        (
                            kind.to_string(),
                            Json::Obj(vec![
                                ("requests".to_string(), Json::num(sorted.len() as f64)),
                                (
                                    "p50".to_string(),
                                    Json::num(percentile(sorted, 0.50) as f64),
                                ),
                                (
                                    "p90".to_string(),
                                    Json::num(percentile(sorted, 0.90) as f64),
                                ),
                                (
                                    "p99".to_string(),
                                    Json::num(percentile(sorted, 0.99) as f64),
                                ),
                                (
                                    "max".to_string(),
                                    Json::num(sorted.last().copied().unwrap_or(0) as f64),
                                ),
                            ]),
                        )
                    })
                    .collect(),
                ),
            ),
            (
                "latencyUs".to_string(),
                Json::Obj(vec![
                    (
                        "p50".to_string(),
                        Json::num(self.percentile_us(0.50) as f64),
                    ),
                    (
                        "p90".to_string(),
                        Json::num(self.percentile_us(0.90) as f64),
                    ),
                    (
                        "p99".to_string(),
                        Json::num(self.percentile_us(0.99) as f64),
                    ),
                    (
                        "p999".to_string(),
                        Json::num(self.percentile_us(0.999) as f64),
                    ),
                    (
                        "max".to_string(),
                        Json::num(self.latencies_us.last().copied().unwrap_or(0) as f64),
                    ),
                    ("meanUs".to_string(), Json::num(self.mean_us())),
                ]),
            ),
            (
                "elapsedSecs".to_string(),
                Json::num(self.elapsed.as_secs_f64()),
            ),
            ("qps".to_string(), Json::num(self.qps())),
            (
                "perOp".to_string(),
                Json::Obj(
                    MIX_OPS
                        .iter()
                        .zip(self.per_op)
                        .map(|(op, n)| ((*op).to_string(), Json::num(n as f64)))
                        .collect(),
                ),
            ),
        ];
        if let Some(ingest) = &self.ingest {
            let quantile = |q: f64| -> f64 {
                if ingest.apply_latencies_us.is_empty() {
                    return 0.0;
                }
                let rank = (q * ingest.apply_latencies_us.len() as f64).ceil() as usize;
                ingest.apply_latencies_us[rank.clamp(1, ingest.apply_latencies_us.len()) - 1] as f64
            };
            fields.push((
                "ingest".to_string(),
                Json::Obj(vec![
                    (
                        "deltas".to_string(),
                        Json::num(self.config.ingest_deltas as f64),
                    ),
                    ("ok".to_string(), Json::num(ingest.ok as f64)),
                    ("failed".to_string(), Json::num(ingest.failed as f64)),
                    (
                        "applyLatencyUs".to_string(),
                        Json::Obj(vec![
                            ("p50".to_string(), Json::num(quantile(0.50))),
                            ("max".to_string(), Json::num(quantile(1.0))),
                        ]),
                    ),
                    (
                        "generationStart".to_string(),
                        Json::num(ingest.generations.first().copied().unwrap_or(0) as f64),
                    ),
                    (
                        "generationEnd".to_string(),
                        Json::num(ingest.generations.last().copied().unwrap_or(0) as f64),
                    ),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// CI gate: zero protocol errors (query, tag *and* ingest side), and
    /// (optionally) a p99 bound.
    pub fn check(&self, max_p99_ms: Option<f64>) -> Result<(), String> {
        if self.counts.tag_protocol_error > 0 {
            return Err(format!(
                "{} tag protocol error(s) on the wire",
                self.counts.tag_protocol_error
            ));
        }
        if self.counts.protocol_error > 0 {
            return Err(format!(
                "{} protocol error(s) on the wire",
                self.counts.protocol_error
            ));
        }
        if self.config.tag_ratio > 0.0 && self.tag_issued == 0 {
            return Err("tag ratio set but no tag requests were issued".to_string());
        }
        if let Some(ingest) = &self.ingest {
            if ingest.failed > 0 {
                return Err(format!("{} delta ingest(s) failed", ingest.failed));
            }
            let monotonic = ingest
                .generations
                .iter()
                .zip(ingest.generations.iter().skip(1))
                .all(|(a, b)| a < b);
            if !monotonic {
                return Err(format!(
                    "ingest generations not strictly monotonic: {:?}",
                    ingest.generations
                ));
            }
        }
        if let Some(bound) = max_p99_ms {
            let p99_ms = self.percentile_us(0.99) as f64 / 1000.0;
            if p99_ms > bound {
                return Err(format!(
                    "p99 {p99_ms:.2} ms exceeds the {bound:.2} ms bound"
                ));
            }
        }
        Ok(())
    }
}

struct WorkerOutcome {
    lookup_latencies_us: Vec<u64>,
    tag_latencies_us: Vec<u64>,
    tag_issued: u64,
    counts: LoadCounts,
    per_op: [u64; 7],
}

/// [`MIX_OPS`] index of a lookup query; `None` for tagging queries,
/// which are counted in their own bucket.
fn op_index(query: &Query) -> Option<usize> {
    match query {
        Query::Men2Ent { .. } => Some(0),
        Query::GetConceptByMention { .. } => Some(1),
        Query::GetEntity { .. } => Some(2),
        Query::GetConcept { .. } => Some(3),
        Query::MentionSenses { .. } => Some(4),
        Query::IsA { .. } => Some(5),
        Query::AncestorsOf { .. } => Some(6),
        Query::Tag { .. } | Query::Classify { .. } => None,
    }
}

/// One persistent client connection; reconnects transparently when the
/// server closes it (after a 429 or an error response).
struct Client {
    addr: String,
    reader: Option<BufReader<TcpStream>>,
    writer: Option<BufWriter<TcpStream>>,
}

impl Client {
    fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            reader: None,
            writer: None,
        }
    }

    fn ensure_connected(&mut self) -> std::io::Result<()> {
        if self.writer.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        self.reader = Some(BufReader::new(stream.try_clone()?));
        self.writer = Some(BufWriter::new(stream));
        Ok(())
    }

    fn disconnect(&mut self) {
        self.reader = None;
        self.writer = None;
    }

    /// One request/response exchange; `Err` is a wire-level failure.
    fn exchange(&mut self, body: &[u8]) -> Result<http::ClientResponse, http::HttpError> {
        self.exchange_at("/v1/query", body)
    }

    /// [`Client::exchange`] against an arbitrary endpoint (ingest phase).
    fn exchange_at(
        &mut self,
        path: &str,
        body: &[u8],
    ) -> Result<http::ClientResponse, http::HttpError> {
        self.ensure_connected()?;
        let (Some(writer), Some(reader)) = (self.writer.as_mut(), self.reader.as_mut()) else {
            return Err(http::HttpError::Malformed("connection lost after connect"));
        };
        http::write_request(writer, "POST", path, Some(body), true)?;
        match http::read_client_response(reader, http::MAX_BODY_BYTES)? {
            Some(response) => {
                if !response.keep_alive {
                    self.disconnect();
                }
                Ok(response)
            }
            None => {
                self.disconnect();
                Err(http::HttpError::Malformed("server closed mid-exchange"))
            }
        }
    }
}

fn run_worker(
    index: usize,
    config: &LoadConfig,
    vocab: &ProbeVocab,
    requests: usize,
) -> WorkerOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(index as u64));
    let mut client = Client::new(&config.addr);
    let mut outcome = WorkerOutcome {
        lookup_latencies_us: Vec::with_capacity(requests),
        tag_latencies_us: Vec::new(),
        tag_issued: 0,
        counts: LoadCounts::default(),
        per_op: [0; 7],
    };
    for _ in 0..requests {
        // The kind roll comes first so the stream stays a pure function
        // of the seed whatever the ratio does to each branch's rng use.
        let is_tag = config.tag_ratio > 0.0 && rng.gen::<f64>() < config.tag_ratio;
        let query = if is_tag {
            vocab.next_tag_query(&mut rng)
        } else {
            vocab.next_query(&mut rng)
        };
        if is_tag {
            outcome.tag_issued += 1;
        } else if let Some(op) = op_index(&query) {
            outcome.per_op[op] += 1;
        }
        let body = wire::encode_query(&query).write();
        let start = Instant::now();
        // Tag traffic exercises the dedicated endpoint, not /v1/query —
        // the smoke covers the route a tagging client would actually hit.
        let exchanged = if is_tag {
            client.exchange_at("/v1/tag", body.as_bytes())
        } else {
            client.exchange(body.as_bytes())
        };
        let response = match exchanged {
            Ok(response) => response,
            Err(_) => {
                client.disconnect();
                outcome.counts.protocol_error += 1;
                if is_tag {
                    outcome.counts.tag_protocol_error += 1;
                }
                continue;
            }
        };
        let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let latencies = if is_tag {
            &mut outcome.tag_latencies_us
        } else {
            &mut outcome.lookup_latencies_us
        };
        let mut protocol_error = || {
            outcome.counts.protocol_error += 1;
            if is_tag {
                outcome.counts.tag_protocol_error += 1;
            }
        };
        match response.status {
            200 => match parse_envelope(&response.body) {
                Ok(()) => {
                    outcome.counts.ok += 1;
                    latencies.push(elapsed_us);
                }
                Err(()) => protocol_error(),
            },
            404 | 400 | 409 => match parse_envelope(&response.body) {
                Ok(()) => {
                    outcome.counts.query_error += 1;
                    latencies.push(elapsed_us);
                }
                Err(()) => protocol_error(),
            },
            429 => outcome.counts.overloaded += 1,
            _ => protocol_error(),
        }
    }
    outcome
}

/// The `k`-th synthetic delta of the ingest phase: a batch of fresh
/// entities filed under existing vocabulary concepts. Pure function of
/// `(vocab, seed, k)`, like the query stream.
fn synthetic_delta(vocab: &ProbeVocab, seed: u64, k: usize) -> DeltaOverlay {
    let mut delta = DeltaOverlay::new();
    for j in 0..8 {
        let name = format!("压测实体_{seed}_{k}_{j}");
        let concept = &vocab.concepts[(k * 8 + j) % vocab.concepts.len()];
        delta.add_entity(&name, None);
        delta.upsert_entity_is_a(
            &name,
            None,
            concept,
            IsAMeta::new(Source::Import, 0.5 + (j as f32) * 0.05),
        );
    }
    delta
}

/// The ingest phase: posts `config.ingest_deltas` sidecars spaced out over
/// the run, so the applies land while the query workers are mid-flight.
fn run_ingester(config: &LoadConfig, vocab: &ProbeVocab) -> IngestStats {
    let mut client = Client::new(&config.addr);
    let mut stats = IngestStats::default();
    for k in 0..config.ingest_deltas {
        std::thread::sleep(Duration::from_millis(50));
        let body = synthetic_delta(vocab, config.seed, k).encode();
        let start = Instant::now();
        let ok = match client.exchange_at("/admin/ingest", &body) {
            Ok(response) if response.status == 200 => {
                match std::str::from_utf8(&response.body)
                    .ok()
                    .and_then(|text| Json::parse(text).ok())
                    .and_then(|doc| doc.get("generation").and_then(Json::as_u64))
                {
                    Some(generation) => {
                        stats.generations.push(generation);
                        true
                    }
                    None => false,
                }
            }
            Ok(_) | Err(_) => {
                client.disconnect();
                false
            }
        };
        if ok {
            let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            stats.apply_latencies_us.push(elapsed_us);
            stats.ok += 1;
        } else {
            stats.failed += 1;
        }
    }
    stats.apply_latencies_us.sort_unstable();
    stats
}

/// Validates that a response body is a well-formed protocol envelope.
fn parse_envelope(body: &[u8]) -> Result<(), ()> {
    let text = std::str::from_utf8(body).map_err(|_| ())?;
    let doc = Json::parse(text).map_err(|_| ())?;
    if doc.get("generation").is_some() {
        wire::decode_response(&doc).map(|_| ()).map_err(|_| ())
    } else if doc.get("error").is_some() {
        // Server-level error body ({"error":{"kind":…}}), e.g. badRequest.
        Ok(())
    } else {
        Err(())
    }
}

/// Drives the workload and collects the merged report.
///
/// Runs one [`cnp_runtime::Runtime`] task per connection (task
/// granularity 1, so every connection drives concurrently); each issues
/// its deterministic share of the mixed query stream and measures every
/// exchange end to end.
pub fn run(config: &LoadConfig, vocab: &ProbeVocab) -> LoadReport {
    assert!(vocab.is_usable(), "probe vocabulary is empty");
    let connections = config.connections.max(1);
    let per_worker = config.requests / connections;
    let remainder = config.requests % connections;
    // The ingest phase, when enabled, rides as one extra concurrent task
    // so the deltas land while the query workers are mid-flight.
    let ingesting = config.ingest_deltas > 0;
    let tasks = connections + usize::from(ingesting);
    let rt = cnp_runtime::Runtime::new(tasks);
    let start = Instant::now();
    enum TaskOutcome {
        Worker(WorkerOutcome),
        Ingest(IngestStats),
    }
    let outcomes: Vec<TaskOutcome> = rt.par_tasks(tasks, |i| {
        if i < connections {
            let requests = per_worker + usize::from(i < remainder);
            TaskOutcome::Worker(run_worker(i, config, vocab, requests))
        } else {
            TaskOutcome::Ingest(run_ingester(config, vocab))
        }
    });
    let elapsed = start.elapsed();

    let mut lookup_latencies_us = Vec::new();
    let mut tag_latencies_us = Vec::new();
    let mut tag_issued = 0;
    let mut counts = LoadCounts::default();
    let mut per_op = [0u64; 7];
    let mut ingest = None;
    for outcome in outcomes {
        let outcome = match outcome {
            TaskOutcome::Worker(outcome) => outcome,
            TaskOutcome::Ingest(stats) => {
                ingest = Some(stats);
                continue;
            }
        };
        lookup_latencies_us.extend(outcome.lookup_latencies_us);
        tag_latencies_us.extend(outcome.tag_latencies_us);
        tag_issued += outcome.tag_issued;
        counts.ok += outcome.counts.ok;
        counts.query_error += outcome.counts.query_error;
        counts.overloaded += outcome.counts.overloaded;
        counts.protocol_error += outcome.counts.protocol_error;
        counts.tag_protocol_error += outcome.counts.tag_protocol_error;
        for (total, n) in per_op.iter_mut().zip(outcome.per_op) {
            *total += n;
        }
    }
    let mut latencies_us = Vec::with_capacity(lookup_latencies_us.len() + tag_latencies_us.len());
    latencies_us.extend_from_slice(&lookup_latencies_us);
    latencies_us.extend_from_slice(&tag_latencies_us);
    latencies_us.sort_unstable();
    lookup_latencies_us.sort_unstable();
    tag_latencies_us.sort_unstable();
    LoadReport {
        config: config.clone(),
        counts,
        elapsed,
        latencies_us,
        lookup_latencies_us,
        tag_latencies_us,
        tag_issued,
        per_op,
        ingest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: Vec<u64>) -> LoadReport {
        LoadReport {
            config: LoadConfig::default(),
            counts: LoadCounts {
                ok: latencies.len() as u64,
                ..LoadCounts::default()
            },
            elapsed: Duration::from_secs(2),
            lookup_latencies_us: latencies.clone(),
            tag_latencies_us: Vec::new(),
            tag_issued: 0,
            latencies_us: latencies,
            per_op: [0; 7],
            ingest: None,
        }
    }

    #[test]
    fn percentiles_match_definition() {
        let r = report((1..=1000).collect());
        assert_eq!(r.percentile_us(0.50), 500);
        assert_eq!(r.percentile_us(0.99), 990);
        assert_eq!(r.percentile_us(0.999), 999);
        assert_eq!(r.percentile_us(1.0), 1000);
        assert_eq!(report(vec![7]).percentile_us(0.5), 7);
        assert_eq!(report(Vec::new()).percentile_us(0.99), 0);
    }

    #[test]
    fn qps_counts_served_requests() {
        let r = report(vec![10; 500]);
        assert!((r.qps() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn check_gates_on_protocol_errors_and_p99() {
        let mut r = report((1..=1000).collect());
        assert!(r.check(Some(1.0)).is_ok()); // p99 = 990us < 1ms
        assert!(r.check(Some(0.5)).is_err());
        r.counts.protocol_error = 1;
        assert!(r.check(None).is_err());
    }

    #[test]
    fn check_gates_on_ingest_failures_and_generation_order() {
        let mut r = report((1..=100).collect());
        r.ingest = Some(IngestStats {
            ok: 3,
            failed: 0,
            apply_latencies_us: vec![100, 200, 300],
            generations: vec![2, 3, 4],
        });
        assert!(r.check(None).is_ok());
        // The ingest section rides along in the JSON report.
        let doc = r.to_json();
        let ingest = doc.get("ingest").expect("ingest section");
        assert_eq!(ingest.get("ok").and_then(Json::as_u64), Some(3));
        assert_eq!(ingest.get("generationEnd").and_then(Json::as_u64), Some(4));
        assert_eq!(
            ingest
                .get("applyLatencyUs")
                .and_then(|l| l.get("p50"))
                .and_then(Json::as_u64),
            Some(200)
        );
        // A failed apply or a non-monotonic generation fails the gate.
        r.ingest.as_mut().unwrap().failed = 1;
        assert!(r.check(None).is_err());
        r.ingest = Some(IngestStats {
            ok: 2,
            failed: 0,
            apply_latencies_us: vec![100, 200],
            generations: vec![3, 3],
        });
        assert!(r.check(None).is_err(), "duplicate generation must fail");
    }

    #[test]
    fn synthetic_deltas_are_deterministic_and_nonempty() {
        let vocab = ProbeVocab {
            mentions: vec!["刘德华".to_string()],
            entity_keys: vec!["刘德华（歌手）".to_string()],
            concepts: vec!["人物".to_string(), "歌手".to_string()],
        };
        let a = synthetic_delta(&vocab, 42, 0);
        assert_eq!(a, synthetic_delta(&vocab, 42, 0));
        assert_ne!(a, synthetic_delta(&vocab, 42, 1));
        assert_ne!(a, synthetic_delta(&vocab, 43, 0));
        assert_eq!(a.num_ops(), 16);
        // The sidecar round-trips through the wire codec.
        assert_eq!(DeltaOverlay::decode(&a.encode()).unwrap(), a);
    }

    #[test]
    fn query_stream_is_deterministic_per_seed() {
        let vocab = ProbeVocab {
            mentions: vec!["刘德华".to_string(), "苹果".to_string()],
            entity_keys: vec!["刘德华（歌手）".to_string()],
            concepts: vec!["人物".to_string(), "歌手".to_string()],
        };
        let stream = |seed: u64| -> Vec<Query> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| vocab.next_query(&mut rng)).collect()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8));
        // The mix actually exercises every op over a long stream.
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..2000 {
            if let Some(op) = op_index(&vocab.next_query(&mut rng)) {
                seen[op] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "mix skipped an op: {seen:?}");
    }

    #[test]
    fn tag_stream_is_deterministic_and_draws_from_the_vocabulary() {
        let vocab = ProbeVocab {
            mentions: vec!["刘德华".to_string(), "苹果".to_string()],
            entity_keys: vec!["刘德华（歌手）".to_string()],
            concepts: vec!["人物".to_string()],
        };
        let stream = |seed: u64| -> Vec<Query> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| vocab.next_tag_query(&mut rng)).collect()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8));
        for query in stream(3) {
            let Query::Tag { text, .. } = query else {
                panic!("tag stream emitted a non-tag query");
            };
            assert!(
                text.contains("刘德华") || text.contains("苹果"),
                "document {text:?} uses no vocabulary mention"
            );
            assert!(text.ends_with('。'));
        }
    }

    #[test]
    fn check_gates_on_tag_protocol_errors() {
        let mut r = report((1..=100).collect());
        r.counts.tag_protocol_error = 1;
        r.counts.protocol_error = 1;
        let message = r.check(None).unwrap_err();
        assert!(message.contains("tag protocol"), "got {message}");
        // A tag ratio that produced no tag traffic is a broken run.
        let mut r = report((1..=100).collect());
        r.config.tag_ratio = 0.5;
        assert!(r.check(None).is_err());
        r.tag_issued = 42;
        assert!(r.check(None).is_ok());
    }

    #[test]
    fn report_json_carries_per_kind_latency_buckets() {
        let mut r = report((1..=100).collect());
        r.config.tag_ratio = 0.25;
        r.tag_issued = 10;
        r.tag_latencies_us = (1..=10).map(|v| v * 1000).collect();
        let doc = r.to_json();
        assert_eq!(
            doc.get("workload")
                .and_then(|w| w.get("tagRatio"))
                .and_then(Json::as_f64),
            Some(0.25)
        );
        let kinds = doc.get("latencyByKindUs").expect("latencyByKindUs");
        let lookup = kinds.get("lookup").expect("lookup bucket");
        assert_eq!(lookup.get("requests").and_then(Json::as_u64), Some(100));
        assert_eq!(lookup.get("p50").and_then(Json::as_u64), Some(50));
        let tag = kinds.get("tag").expect("tag bucket");
        assert_eq!(tag.get("requests").and_then(Json::as_u64), Some(10));
        assert_eq!(tag.get("p50").and_then(Json::as_u64), Some(5000));
        assert_eq!(tag.get("max").and_then(Json::as_u64), Some(10000));
        assert_eq!(
            doc.get("counts")
                .and_then(|c| c.get("tagProtocolError"))
                .and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn envelope_validation_distinguishes_protocol_errors() {
        assert!(
            parse_envelope(br#"{"generation":1,"result":{"type":"isA","holds":true}}"#).is_ok()
        );
        assert!(parse_envelope(br#"{"error":{"kind":"badRequest","detail":"x"}}"#).is_ok());
        assert!(parse_envelope(b"not json").is_err());
        assert!(parse_envelope(br#"{"generation":"x"}"#).is_err());
        assert!(parse_envelope(br#"{"unrelated":true}"#).is_err());
    }
}
