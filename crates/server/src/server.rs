//! The network front-end: a `TcpListener` accept loop feeding a bounded
//! connection queue drained by persistent worker threads.
//!
//! The flow is deliberately boring — and bounded at every step:
//!
//! 1. The accept thread takes a connection and offers it to the
//!    [`cnp_runtime::BoundedQueue`]. A **full queue refuses the
//!    connection**: the accept thread writes a canned `429` with
//!    `Retry-After` and closes — saturation becomes an explicit, typed
//!    `Overloaded` signal instead of an ever-growing backlog ([admission
//!    control]).
//! 2. A worker pops the connection and serves its keep-alive request
//!    loop: parse (hard size caps, typed 400/413/405 on hostile input),
//!    route, execute on the [`TaxonomyService`], write the JSON response.
//! 3. Snapshot reloads (`POST /admin/reload`) go through the service's
//!    generation hot-swap: the load happens on the worker, **no lock is
//!    held**, in-flight queries drain on the generation they pinned, and
//!    every response carries its generation — the drain-on-reload story
//!    is the one PR 5 built, now reachable over the wire.
//! 4. [`ServerHandle::shutdown`] closes the queue (admitted connections
//!    still drain), unblocks the accept loop, and joins every thread.
//!
//! [admission control]: crate::ServerConfig::queue_capacity

use crate::http::{self, HttpError, Request};
use crate::stats::{QueryKind, ServerStats};
use cnp_runtime::{BoundedQueue, PushError, WorkerPool};
use cnp_serve::json::Json;
use cnp_serve::{wire, Query, TaxonomyService};
use cnp_taxonomy::{BootSnapshot, DeltaOverlay, FrozenTaxonomy, IngestDelta, TaxonomyRead};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on queries per `/v1/batch` request.
pub const MAX_BATCH: usize = 1024;

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Admission bound: connections queued but not yet picked up by a
    /// worker. Beyond this, new connections get `429 Overloaded`.
    pub queue_capacity: usize,
    /// Per-request body cap (clamped to [`http::MAX_BODY_BYTES`]).
    pub max_body_bytes: usize,
    /// Socket read timeout. Doubles as the keep-alive idle timeout and
    /// bounds how long shutdown waits for parked workers.
    pub read_timeout: Duration,
    /// Snapshot file `POST /admin/reload` re-reads. `None` disables the
    /// endpoint.
    pub snapshot_path: Option<PathBuf>,
    /// Overlay segments a `POST /admin/ingest` may accumulate before the
    /// server schedules a background compaction (base + overlays folded
    /// into a fresh base on a dedicated worker; queries and ingests keep
    /// flowing the whole time). `0` disables automatic compaction.
    pub compact_threshold: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = cnp_runtime::default_threads();
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_capacity: workers * 2,
            max_body_bytes: http::MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(5),
            snapshot_path: None,
            compact_threshold: 4,
        }
    }
}

struct Shared<T> {
    service: Arc<TaxonomyService<T>>,
    stats: ServerStats,
    shutdown: AtomicBool,
    config: ServerConfig,
    /// One background worker with a one-slot queue: at most one
    /// compaction runs, at most one more is pending. `try_execute`'s
    /// "queue full" just means a fold is already scheduled — the next
    /// over-threshold ingest will try again.
    compactor: WorkerPool,
}

/// A running server. Dropping the handle shuts the server down; call
/// [`ServerHandle::shutdown`] for an explicit graceful stop or
/// [`ServerHandle::wait`] to park the calling thread (the `cnp_server`
/// binary does).
///
/// `T` is the snapshot backend the service answers from — the owned
/// [`FrozenTaxonomy`] default, the borrowed `FrozenTaxonomyView`, or
/// `AnySnapshot` for whatever format the snapshot file holds.
pub struct ServerHandle<T = FrozenTaxonomy> {
    addr: SocketAddr,
    shared: Arc<Shared<T>>,
    queue: Arc<BoundedQueue<TcpStream>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T> std::fmt::Debug for ServerHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl<T> ServerHandle<T> {
    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the serving counters.
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The service behind the wire — the embedding process can keep
    /// executing in-process queries and hot-swaps on it.
    pub fn service(&self) -> &Arc<TaxonomyService<T>> {
        &self.shared.service
    }

    /// Blocks until the accept loop exits (i.e. until another thread
    /// triggers shutdown or the process dies).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.finish();
    }

    /// Graceful stop: refuse new connections, drain admitted ones, join
    /// every thread.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.finish();
    }

    fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        // Unblock the accept loop with a throwaway connection; it checks
        // the flag before admitting anything.
        let _ = TcpStream::connect(self.addr);
    }

    fn finish(&mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<T> Drop for ServerHandle<T> {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.finish();
    }
}

/// Binds `config.addr` and serves `service` until the returned handle is
/// shut down or dropped.
///
/// Generic over the snapshot backend: a service holding the owned
/// `FrozenTaxonomy`, the borrowed `FrozenTaxonomyView`, the
/// version-dispatching `AnySnapshot`, or an `OverlayView` over any of
/// them all go on the wire unchanged. `BootSnapshot` is required because
/// `/admin/reload` rebuilds a snapshot of the same representation from
/// the configured file; `IngestDelta` because `/admin/ingest` applies
/// delta overlays (every snapshot backend implements it — overlay views
/// fold cheaply, plain snapshots materialise).
pub fn serve<T: TaxonomyRead + BootSnapshot + IngestDelta + 'static>(
    service: Arc<TaxonomyService<T>>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle<T>> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let queue: Arc<BoundedQueue<TcpStream>> = Arc::new(BoundedQueue::new(config.queue_capacity));
    let shared = Arc::new(Shared {
        service,
        stats: ServerStats::default(),
        shutdown: AtomicBool::new(false),
        config,
        compactor: WorkerPool::new("cnp-compact", 1, 1),
    });

    // A failed spawn propagates as io::Error after closing the queue so
    // any workers already running drain out and exit instead of leaking.
    let n_workers = shared.config.workers.max(1);
    let mut workers = Vec::with_capacity(n_workers);
    for i in 0..n_workers {
        let queue_w = Arc::clone(&queue);
        let shared_w = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name(format!("cnp-http-{i}"))
            .spawn(move || {
                while let Some(stream) = queue_w.pop() {
                    handle_connection(stream, &shared_w);
                }
            });
        match spawned {
            Ok(handle) => workers.push(handle),
            Err(e) => {
                abandon_workers(&queue, workers);
                return Err(e);
            }
        }
    }

    let accept = {
        let queue_a = Arc::clone(&queue);
        let shared_a = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("cnp-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared_a.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    match queue_a.try_push(stream) {
                        Ok(()) => shared_a.stats.connection(),
                        Err(PushError::Full(stream)) => refuse_overloaded(stream, &shared_a),
                        Err(PushError::Closed(_)) => break,
                    }
                }
            });
        match spawned {
            Ok(handle) => handle,
            Err(e) => {
                abandon_workers(&queue, workers);
                return Err(e);
            }
        }
    };

    Ok(ServerHandle {
        addr,
        shared,
        queue,
        accept: Some(accept),
        workers,
    })
}

/// Boot-failure cleanup: closes the queue so every already-spawned worker
/// sees `pop() == None` and exits, then joins them.
fn abandon_workers(queue: &BoundedQueue<TcpStream>, workers: Vec<std::thread::JoinHandle<()>>) {
    queue.close();
    for worker in workers {
        let _ = worker.join();
    }
}

/// Admission control's refusal path: a canned `429` written on the accept
/// thread (never blocks on a worker), then close.
fn refuse_overloaded<T>(stream: TcpStream, shared: &Shared<T>) {
    shared.stats.refused();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut writer = BufWriter::new(stream);
    let body = error_body("overloaded", "server work queue is full; retry later");
    let _ = http::write_response(&mut writer, 429, body.as_bytes(), false);
}

fn error_body(kind: &str, detail: &str) -> String {
    Json::Obj(vec![(
        "error".to_string(),
        Json::Obj(vec![
            ("kind".to_string(), Json::str(kind)),
            ("detail".to_string(), Json::str(detail)),
        ]),
    )])
    .write()
}

/// One worker's whole tenure on one connection: the keep-alive loop.
fn handle_connection<T: TaxonomyRead + BootSnapshot + IngestDelta + 'static>(
    stream: TcpStream,
    shared: &Shared<T>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let request = match http::read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(None) => break, // clean keep-alive end
            Ok(Some(request)) => request,
            Err(error) => {
                // Typed refusal where HTTP allows one; a socket error
                // (including the idle timeout) just closes.
                let status = match &error {
                    HttpError::Malformed(_) => 400,
                    HttpError::TooLarge(_) => 400,
                    HttpError::BodyTooLarge => 413,
                    HttpError::UnsupportedMethod => 405,
                    HttpError::Io(_) => break,
                };
                // An HTTP-layer rejection is still a request the worker
                // read and answered: count it, so `requests ==
                // responses_ok + responses_error` holds in /v1/health.
                shared.stats.request();
                shared.stats.malformed();
                shared.stats.response(status);
                let body = error_body("badRequest", &error.to_string());
                let _ = http::write_response(&mut writer, status, body.as_bytes(), false);
                break; // framing is unreliable after any of these
            }
        };
        shared.stats.request();
        let keep_alive = request.keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
        let (status, body) = route(&request, shared);
        shared.stats.response(status);
        if http::write_response(&mut writer, status, body.as_bytes(), keep_alive).is_err() {
            break;
        }
        if !keep_alive {
            break;
        }
    }
    let _ = writer.flush();
}

/// Maps one parsed request to `(status, JSON body)`.
fn route<T: TaxonomyRead + BootSnapshot + IngestDelta + 'static>(
    request: &Request,
    shared: &Shared<T>,
) -> (u16, String) {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/v1/health") => health(shared),
        ("POST", "/v1/query") => query(&request.body, shared),
        ("POST", "/v1/tag") => tag(&request.body, shared),
        ("POST", "/v1/batch") => batch(&request.body, shared),
        ("POST", "/admin/reload") => reload(shared),
        ("POST", "/admin/ingest") => ingest(&request.body, shared),
        ("GET", "/v1/query" | "/v1/tag" | "/v1/batch" | "/admin/reload" | "/admin/ingest")
        | ("POST", "/v1/health") => (
            405,
            error_body("methodNotAllowed", "wrong method for this endpoint"),
        ),
        _ => (404, error_body("notFound", "unknown endpoint")),
    }
}

fn health<T: TaxonomyRead>(shared: &Shared<T>) -> (u16, String) {
    let stats = shared.stats.snapshot();
    let body = Json::Obj(vec![
        ("status".to_string(), Json::str("ok")),
        (
            "generation".to_string(),
            Json::num(shared.service.generation() as f64),
        ),
        (
            "stats".to_string(),
            Json::Obj(vec![
                (
                    "connections".to_string(),
                    Json::num(stats.connections as f64),
                ),
                ("requests".to_string(), Json::num(stats.requests as f64)),
                (
                    "responsesOk".to_string(),
                    Json::num(stats.responses_ok as f64),
                ),
                (
                    "responsesError".to_string(),
                    Json::num(stats.responses_error as f64),
                ),
                ("overloaded".to_string(), Json::num(stats.overloaded as f64)),
                ("malformed".to_string(), Json::num(stats.malformed as f64)),
                (
                    "kindLookup".to_string(),
                    Json::num(stats.kind_lookup as f64),
                ),
                ("kindTag".to_string(), Json::num(stats.kind_tag as f64)),
                ("kindBatch".to_string(), Json::num(stats.kind_batch as f64)),
            ]),
        ),
    ]);
    (200, body.write())
}

fn parse_body(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Json::parse(text).map_err(|e| e.to_string())
}

fn query<T: TaxonomyRead>(body: &[u8], shared: &Shared<T>) -> (u16, String) {
    let query: Query = match parse_body(body)
        .and_then(|doc| wire::decode_query(&doc).map_err(|e| e.to_string()))
    {
        Ok(query) => query,
        Err(detail) => return (400, error_body("badRequest", &detail)),
    };
    shared.stats.kind(match query {
        Query::Tag { .. } | Query::Classify { .. } => QueryKind::Tag,
        _ => QueryKind::Lookup,
    });
    let response = shared.service.execute(&query);
    let status = wire::status_for(&response.result);
    (status, wire::encode_response(&response).write())
}

/// `POST /v1/tag`: the tagging workload's dedicated endpoint. The body is
/// the tag query without the `op` envelope (`{"text":…,"options":…}`,
/// with `"op":"classify"` selecting the concepts-only variant); the
/// response is the same generation-stamped envelope `/v1/query` writes.
fn tag<T: TaxonomyRead>(body: &[u8], shared: &Shared<T>) -> (u16, String) {
    let query: Query = match parse_body(body)
        .and_then(|doc| wire::decode_tag_query(&doc).map_err(|e| e.to_string()))
    {
        Ok(query) => query,
        Err(detail) => return (400, error_body("badRequest", &detail)),
    };
    shared.stats.kind(QueryKind::Tag);
    let response = shared.service.execute(&query);
    let status = wire::status_for(&response.result);
    (status, wire::encode_response(&response).write())
}

fn batch<T: TaxonomyRead>(body: &[u8], shared: &Shared<T>) -> (u16, String) {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(detail) => return (400, error_body("badRequest", &detail)),
    };
    let Some(items) = doc.get("queries").and_then(Json::as_arr) else {
        return (
            400,
            error_body("badRequest", "field \"queries\" missing or not an array"),
        );
    };
    if items.len() > MAX_BATCH {
        return (
            413,
            error_body("badRequest", "batch exceeds the query-count cap"),
        );
    }
    let queries: Vec<Query> = match items.iter().map(wire::decode_query).collect() {
        Ok(queries) => queries,
        Err(e) => return (400, error_body("badRequest", &e.to_string())),
    };
    shared.stats.kind(QueryKind::Batch);
    let responses = shared.service.execute_batch(&queries);
    let generation = responses.first().map_or_else(
        || shared.service.generation(),
        |response| response.generation,
    );
    let body = Json::Obj(vec![
        ("generation".to_string(), Json::num(generation as f64)),
        (
            "responses".to_string(),
            Json::Arr(responses.iter().map(wire::encode_response).collect()),
        ),
    ]);
    (200, body.write())
}

/// `POST /admin/reload`: re-read the configured snapshot file and hot-swap
/// it in. The load and validation run right here on the worker — no lock
/// held, traffic keeps flowing on the old generation — and the swap is
/// the single pointer store from PR 5; in-flight queries drain on the
/// generation they pinned.
fn reload<T: TaxonomyRead + BootSnapshot>(shared: &Shared<T>) -> (u16, String) {
    let Some(path) = &shared.config.snapshot_path else {
        return (
            404,
            error_body("reloadDisabled", "server started without a snapshot path"),
        );
    };
    match shared.service.reload(path) {
        Ok(generation) => {
            let body = Json::Obj(vec![
                ("status".to_string(), Json::str("reloaded")),
                ("generation".to_string(), Json::num(generation as f64)),
            ]);
            (200, body.write())
        }
        Err(e) => (500, error_body("reloadFailed", &e.to_string())),
    }
}

/// `POST /admin/ingest`: apply one binary [`DeltaOverlay`] (the `CNPD`
/// sidecar format) to the serving snapshot. Decode, fold and swap all run
/// on this worker with no lock held against readers — the swap is one
/// generation bump, in-flight queries drain on the generation they
/// pinned, so clients see either generation N or N+1, never a torn
/// merge. Once the overlay depth crosses the configured threshold, a
/// background compaction is scheduled (see [`maybe_compact`]).
fn ingest<T: TaxonomyRead + IngestDelta + 'static>(
    body: &[u8],
    shared: &Shared<T>,
) -> (u16, String) {
    let delta = match DeltaOverlay::decode(body) {
        Ok(delta) => delta,
        Err(e) => return (400, error_body("badDelta", &e.to_string())),
    };
    match shared.service.ingest(&delta) {
        Ok(generation) => {
            maybe_compact(shared);
            let body = Json::Obj(vec![
                ("status".to_string(), Json::str("ingested")),
                ("generation".to_string(), Json::num(generation as f64)),
                ("ops".to_string(), Json::num(delta.num_ops() as f64)),
                (
                    "overlayDepth".to_string(),
                    Json::num(shared.service.overlay_depth() as f64),
                ),
            ]);
            (200, body.write())
        }
        Err(e) => (500, error_body("ingestFailed", &e.to_string())),
    }
}

/// Schedules a background compaction when the overlay depth has reached
/// the configured threshold. The fold runs on the dedicated compactor
/// worker and publishes through the service's compare-and-swap
/// ([`TaxonomyService::swap_if_current`]): if more deltas arrive while it
/// runs, the stale fold is discarded and the next ingest reschedules. A
/// full compactor queue means a fold is already pending — nothing to do.
fn maybe_compact<T: TaxonomyRead + IngestDelta + 'static>(shared: &Shared<T>) {
    let threshold = shared.config.compact_threshold;
    if threshold == 0 || shared.service.overlay_depth() < threshold {
        return;
    }
    let service = Arc::clone(&shared.service);
    let _ = shared.compactor.try_execute(move || {
        // A lost race or a failed fold keeps serving the overlay — the
        // next over-threshold ingest schedules a retry.
        let _ = service.compact();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abandon_workers_closes_the_queue_so_workers_drain_out() {
        let queue: BoundedQueue<TcpStream> = BoundedQueue::new(4);
        abandon_workers(&queue, Vec::new());
        assert!(queue.is_closed());
        // What a parked worker's next pop() sees: None, i.e. "exit now".
        assert!(queue.pop().is_none());
    }
}
