#![forbid(unsafe_code)]
//! `cnp_server` — the network front-end that puts the CN-Probase serving
//! stack on a wire (Chen et al., ICDE 2019, §V: the taxonomy "has been
//! used in applications" — this crate is the application-facing edge).
//!
//! The crate is deliberately dependency-free above `std`: a hand-rolled
//! HTTP/1.1 subset over [`std::net::TcpListener`], the existing
//! `cnp_serve` typed protocol on the wire as JSON, and admission control
//! built on `cnp_runtime`'s [`cnp_runtime::BoundedQueue`].
//!
//! # Architecture
//!
//! ```text
//! TcpListener ── accept thread ──try_push──► BoundedQueue<TcpStream>
//!                     │ Full(stream)                 │ pop
//!                     ▼                              ▼
//!              canned 429 reply            cnp-http-{i} workers
//!                                          parse → route → TaxonomyService
//! ```
//!
//! * **Bounded everything.** The connection queue has a fixed capacity;
//!   when it is full the accept thread itself writes a canned
//!   `429 Too Many Requests` and closes — no unbounded buffering, no
//!   silent drops ([`server::ServerConfig::queue_capacity`]).
//! * **Hardened parsing.** Request lines, header counts, and bodies are
//!   capped *before* allocation; malformed or oversized input maps to
//!   `400`/`413`/`405`, never a panic ([`http`]).
//! * **Generation-aware.** Responses carry the snapshot generation from
//!   `cnp_serve`'s hot-swap layer, so clients observe atomic reloads and
//!   stale cursors are refused with `409` over the wire.
//!
//! # Endpoints
//!
//! | Method | Path            | Purpose                                   |
//! |--------|-----------------|-------------------------------------------|
//! | GET    | `/v1/health`    | liveness + generation + serving counters  |
//! | POST   | `/v1/query`     | one typed query, JSON in / JSON out       |
//! | POST   | `/v1/tag`       | tag/classify one document against the taxonomy |
//! | POST   | `/v1/batch`     | up to [`MAX_BATCH`] queries, one snapshot |
//! | POST   | `/admin/reload` | re-read the boot snapshot, swap atomically|
//!
//! # Quick start
//!
//! ```no_run
//! use cnp_serve::{Query, TaxonomyService};
//! use cnp_server::{serve, ServerConfig};
//! use std::sync::Arc;
//!
//! let service = Arc::new(TaxonomyService::from_snapshot_file(
//!     std::path::Path::new("/tmp/cnp.snapshot"),
//! )?);
//! let handle = serve(service, ServerConfig::default())?;
//! println!("listening on {}", handle.addr());
//! handle.wait(); // blocks until shutdown() is called elsewhere
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The paired `cnp_load` binary (library form in [`load`]) replays a
//! deterministic mix of Table II traffic against a running server and
//! emits the JSON latency report CI gates on.

pub mod http;
pub mod load;
pub mod server;
pub mod stats;

pub use load::{LoadConfig, LoadCounts, LoadReport, ProbeVocab};
pub use server::{serve, ServerConfig, ServerHandle, MAX_BATCH};
pub use stats::{QueryKind, ServerStats, StatsSnapshot};
