#![forbid(unsafe_code)]
//! Serve a taxonomy snapshot over HTTP.
//!
//! ```text
//! cnp_server --snapshot /tmp/cnp.snapshot [--addr 127.0.0.1:7077]
//!            [--workers N] [--queue N] [--read-timeout-ms MS]
//!            [--compact-threshold N]
//! ```
//!
//! Prints `cnp_server listening on <addr> (generation N, <mode>
//! snapshot)` once the listener is bound — harness scripts wait for that
//! line — then blocks until the process is killed. The mode says how the
//! snapshot serves: `owned` (v1/v2, materialised) or `view` (v3,
//! zero-copy off the loaded buffer).
//!
//! The snapshot serves behind a [`cnp_taxonomy::OverlayView`], so
//! `POST /admin/ingest` can apply binary delta sidecars without a
//! restart; once `--compact-threshold` deltas are stacked (default 4,
//! `0` disables) a background fold rebuilds the base.

use cnp_serve::TaxonomyService;
use cnp_server::{serve, ServerConfig};
use cnp_taxonomy::{AnySnapshot, OverlayView};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: cnp_server --snapshot PATH [--addr HOST:PORT] \
                     [--workers N] [--queue N] [--read-timeout-ms MS] \
                     [--compact-threshold N]";

fn fail(message: &str) -> ExitCode {
    eprintln!("cnp_server: {message}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut snapshot: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = match flag.as_str() {
            "--snapshot" => value("--snapshot").map(|v| snapshot = Some(PathBuf::from(v))),
            "--addr" => value("--addr").map(|v| config.addr = v),
            "--workers" => value("--workers")
                .and_then(|v| v.parse().map_err(|e| format!("--workers: {e}")))
                .map(|v: usize| config.workers = v.max(1)),
            "--queue" => value("--queue")
                .and_then(|v| v.parse().map_err(|e| format!("--queue: {e}")))
                .map(|v: usize| config.queue_capacity = v.max(1)),
            "--read-timeout-ms" => value("--read-timeout-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--read-timeout-ms: {e}")))
                .map(|v: u64| config.read_timeout = Duration::from_millis(v)),
            "--compact-threshold" => value("--compact-threshold")
                .and_then(|v| v.parse().map_err(|e| format!("--compact-threshold: {e}")))
                .map(|v: usize| config.compact_threshold = v),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(message) = result {
            return fail(&message);
        }
    }

    let Some(snapshot) = snapshot else {
        return fail("--snapshot is required");
    };

    // `AnySnapshot` boots whatever format the file holds: v1/v2
    // materialise to the owned snapshot, v3 serves zero-copy from the
    // loaded buffer. The overlay wrapper starts empty and only grows
    // when `/admin/ingest` applies deltas.
    let service = match TaxonomyService::<OverlayView<AnySnapshot>>::boot_from_file(&snapshot) {
        Ok(service) => Arc::new(service),
        Err(e) => return fail(&format!("cannot load snapshot {}: {e}", snapshot.display())),
    };
    let mode = service.pin().frozen().base().mode();
    config.snapshot_path = Some(snapshot);

    let handle = match serve(service, config) {
        Ok(handle) => handle,
        Err(e) => return fail(&format!("cannot bind: {e}")),
    };
    println!(
        "cnp_server listening on {} (generation {}, {mode} snapshot)",
        handle.addr(),
        handle.service().generation()
    );
    handle.wait();
    ExitCode::SUCCESS
}
