#![forbid(unsafe_code)]
//! Replay a deterministic mixed-query workload against a running
//! `cnp_server` and report latency percentiles, QPS, and error counts.
//!
//! ```text
//! cnp_load --addr 127.0.0.1:7077 --snapshot /tmp/cnp.snapshot
//!          [--connections 8] [--requests 4000] [--seed 42]
//!          [--out report.json] [--max-p99-ms 250] [--ingest-deltas K]
//!          [--tag-ratio R]
//! ```
//!
//! The snapshot is only read locally, to harvest the probe vocabulary —
//! the same file the server booted from, so every generated query targets
//! names that exist. Exits non-zero if any protocol error occurs or the
//! measured p99 exceeds `--max-p99-ms`.
//!
//! `--ingest-deltas K` turns on the ingest-under-load phase: K synthetic
//! delta sidecars are posted to `/admin/ingest` while the query workload
//! runs, and the run fails if any apply is refused or the acknowledged
//! generations are not strictly increasing.
//!
//! `--tag-ratio R` (0..=1) issues that fraction of requests as tagging
//! traffic against `/v1/tag`: short documents synthesized
//! deterministically from the snapshot's mentions. The run fails on any
//! tag-side protocol error, and the report carries per-kind latency
//! buckets (`latencyByKindUs`).

use cnp_server::{load, LoadConfig, ProbeVocab};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cnp_load --addr HOST:PORT --snapshot PATH \
                     [--connections N] [--requests N] [--seed N] \
                     [--out FILE] [--max-p99-ms MS] [--ingest-deltas K] \
                     [--tag-ratio R]";

fn fail(message: &str) -> ExitCode {
    eprintln!("cnp_load: {message}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = LoadConfig::default();
    let mut snapshot: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut max_p99_ms: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = match flag.as_str() {
            "--addr" => value("--addr").map(|v| config.addr = v),
            "--snapshot" => value("--snapshot").map(|v| snapshot = Some(PathBuf::from(v))),
            "--connections" => value("--connections")
                .and_then(|v| v.parse().map_err(|e| format!("--connections: {e}")))
                .map(|v: usize| config.connections = v.max(1)),
            "--requests" => value("--requests")
                .and_then(|v| v.parse().map_err(|e| format!("--requests: {e}")))
                .map(|v: usize| config.requests = v),
            "--seed" => value("--seed")
                .and_then(|v| v.parse().map_err(|e| format!("--seed: {e}")))
                .map(|v: u64| config.seed = v),
            "--out" => value("--out").map(|v| out = Some(PathBuf::from(v))),
            "--max-p99-ms" => value("--max-p99-ms")
                .and_then(|v| v.parse().map_err(|e| format!("--max-p99-ms: {e}")))
                .map(|v: f64| max_p99_ms = Some(v)),
            "--ingest-deltas" => value("--ingest-deltas")
                .and_then(|v| v.parse().map_err(|e| format!("--ingest-deltas: {e}")))
                .map(|v: usize| config.ingest_deltas = v),
            "--tag-ratio" => value("--tag-ratio")
                .and_then(|v| v.parse().map_err(|e| format!("--tag-ratio: {e}")))
                .and_then(|v: f64| {
                    if (0.0..=1.0).contains(&v) {
                        config.tag_ratio = v;
                        Ok(())
                    } else {
                        Err(format!("--tag-ratio: {v} is outside 0..=1"))
                    }
                }),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(message) = result {
            return fail(&message);
        }
    }

    let Some(snapshot) = snapshot else {
        return fail("--snapshot is required (probe vocabulary source)");
    };
    let vocab = match ProbeVocab::from_snapshot_file(&snapshot) {
        Ok(vocab) => vocab,
        Err(e) => return fail(&format!("cannot read snapshot {}: {e}", snapshot.display())),
    };
    if !vocab.is_usable() {
        return fail("snapshot yields an empty probe vocabulary");
    }

    eprintln!(
        "cnp_load: {} requests over {} connections against {} (seed {})",
        config.requests, config.connections, config.addr, config.seed
    );
    let report = load::run(&config, &vocab);
    let rendered = report.to_json().write();
    println!("{rendered}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{rendered}\n")) {
            return fail(&format!("cannot write {}: {e}", path.display()));
        }
    }
    if let Some(ingest) = &report.ingest {
        eprintln!(
            "cnp_load: ingest ok={} failed={} generations={:?}",
            ingest.ok, ingest.failed, ingest.generations
        );
    }
    eprintln!(
        "cnp_load: ok={} queryError={} overloaded={} protocolError={} \
         p50={}us p99={}us p999={}us qps={:.0}",
        report.counts.ok,
        report.counts.query_error,
        report.counts.overloaded,
        report.counts.protocol_error,
        report.percentile_us(0.50),
        report.percentile_us(0.99),
        report.percentile_us(0.999),
        report.qps()
    );
    if report.config.tag_ratio > 0.0 {
        eprintln!(
            "cnp_load: tag issued={} served={} protocolError={} p50={}us p99={}us",
            report.tag_issued,
            report.tag_latencies_us.len(),
            report.counts.tag_protocol_error,
            report.tag_percentile_us(0.50),
            report.tag_percentile_us(0.99),
        );
    }
    match report.check(max_p99_ms) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("cnp_load: FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}
