//! Lock-free serving counters, reported by `GET /v1/health`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters shared by the accept loop and every worker. All
/// updates are `Relaxed` — the counters are observability, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    requests: AtomicU64,
    responses_ok: AtomicU64,
    responses_error: AtomicU64,
    overloaded: AtomicU64,
    malformed: AtomicU64,
    kind_lookup: AtomicU64,
    kind_tag: AtomicU64,
    kind_batch: AtomicU64,
}

/// Which serving workload a decoded request belongs to, for the per-kind
/// counters in `/v1/health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// A single taxonomy lookup on `/v1/query` (men2ent, getConcept, …).
    Lookup,
    /// A tagging query — `/v1/tag`, or a tag/classify op on `/v1/query`.
    Tag,
    /// A `/v1/batch` fan-out (counted once per batch, whatever it holds).
    Batch,
}

/// A point-in-time copy of [`ServerStats`].
///
/// Invariant: `requests == responses_ok + responses_error` once the
/// connections that produced them have drained — every request a worker
/// reads (fully parsed *or* rejected at the HTTP layer) is counted, and
/// every one of them gets exactly one response. Admission-control
/// refusals happen before any request is read, so `overloaded` is
/// disjoint from both `requests` and the response counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections admitted to the worker pool.
    pub connections: u64,
    /// Requests read off the wire by a worker, including ones the HTTP
    /// layer rejected with 400/413/405 before reaching a handler.
    pub requests: u64,
    /// Responses with a 2xx status.
    pub responses_ok: u64,
    /// Responses with a non-2xx status, worker-emitted `429`s included.
    /// Admission-control refusals are *not* responses to a request and
    /// count in [`StatsSnapshot::overloaded`] instead.
    pub responses_error: u64,
    /// Connections refused with a canned `429` by admission control (the
    /// bounded queue was full; no request was read).
    pub overloaded: u64,
    /// Subset of `requests` rejected at the HTTP layer (400/413/405).
    pub malformed: u64,
    /// Single lookup queries executed via `/v1/query`.
    pub kind_lookup: u64,
    /// Tagging queries executed — `/v1/tag` plus tag/classify ops on
    /// `/v1/query`.
    pub kind_tag: u64,
    /// Batch requests executed via `/v1/batch` (one per batch).
    pub kind_batch: u64,
}

impl StatsSnapshot {
    /// Sum of the per-kind counters. The kinds are disjoint — every
    /// successfully decoded serving request is counted in exactly one —
    /// so the sum never exceeds `requests` (the remainder being health
    /// checks, admin calls and rejected bodies).
    pub fn kinds_total(&self) -> u64 {
        self.kind_lookup + self.kind_tag + self.kind_batch
    }
}

impl ServerStats {
    pub(crate) fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Classifies a response *to a counted request*. A non-2xx status —
    /// even a worker-emitted `429` — is a response error; admission
    /// refusals never reach this method (see [`ServerStats::refused`]).
    pub(crate) fn response(&self, status: u16) {
        if (200..300).contains(&status) {
            self.responses_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.responses_error.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// An admission-control refusal: the canned `429` written on the
    /// accept thread. No request was read, so only `overloaded` moves.
    pub(crate) fn refused(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one successfully decoded serving request under its
    /// workload kind. Called exactly once per executed request, so the
    /// kinds stay disjoint and summable.
    pub(crate) fn kind(&self, kind: QueryKind) {
        let counter = match kind {
            QueryKind::Lookup => &self.kind_lookup,
            QueryKind::Tag => &self.kind_tag,
            QueryKind::Batch => &self.kind_batch,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_ok: self.responses_ok.load(Ordering::Relaxed),
            responses_error: self.responses_error.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            kind_lookup: self.kind_lookup.load(Ordering::Relaxed),
            kind_tag: self.kind_tag.load(Ordering::Relaxed),
            kind_batch: self.kind_batch.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_classify_statuses() {
        let stats = ServerStats::default();
        stats.connection();
        // Three requests: one served, one handler error, one HTTP-layer
        // rejection (counted as a request too, so the request/response
        // invariant holds).
        stats.request();
        stats.response(200);
        stats.request();
        stats.response(404);
        stats.request();
        stats.malformed();
        stats.response(400);
        // A worker-emitted 429 is a response error, not an admission
        // refusal.
        stats.request();
        stats.response(429);
        // An admission refusal is not a request or a response.
        stats.refused();
        let snap = stats.snapshot();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.requests, 4);
        assert_eq!(snap.responses_ok, 1);
        assert_eq!(snap.responses_error, 3);
        assert_eq!(snap.overloaded, 1);
        assert_eq!(snap.malformed, 1);
        assert_eq!(snap.requests, snap.responses_ok + snap.responses_error);
    }

    #[test]
    fn query_kinds_are_disjoint_and_bounded_by_requests() {
        let stats = ServerStats::default();
        // Four decoded serving requests: two lookups, one tag, one batch;
        // plus one health check that carries no kind.
        for kind in [
            QueryKind::Lookup,
            QueryKind::Lookup,
            QueryKind::Tag,
            QueryKind::Batch,
        ] {
            stats.request();
            stats.kind(kind);
            stats.response(200);
        }
        stats.request();
        stats.response(200);
        let snap = stats.snapshot();
        assert_eq!(snap.kind_lookup, 2);
        assert_eq!(snap.kind_tag, 1);
        assert_eq!(snap.kind_batch, 1);
        assert_eq!(snap.kinds_total(), 4);
        assert!(snap.kinds_total() <= snap.requests);
    }
}
