//! Lock-free serving counters, reported by `GET /v1/health`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters shared by the accept loop and every worker. All
/// updates are `Relaxed` — the counters are observability, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    requests: AtomicU64,
    responses_ok: AtomicU64,
    responses_error: AtomicU64,
    overloaded: AtomicU64,
    malformed: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections admitted to the worker pool.
    pub connections: u64,
    /// Requests fully parsed off the wire.
    pub requests: u64,
    /// Responses with a 2xx status.
    pub responses_ok: u64,
    /// Responses with a 4xx/5xx status (excluding 429).
    pub responses_error: u64,
    /// Connections refused with `429` by admission control.
    pub overloaded: u64,
    /// Requests rejected at the HTTP layer (400/413/405).
    pub malformed: u64,
}

impl ServerStats {
    pub(crate) fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn response(&self, status: u16) {
        if (200..300).contains(&status) {
            self.responses_ok.fetch_add(1, Ordering::Relaxed);
        } else if status == 429 {
            self.overloaded.fetch_add(1, Ordering::Relaxed);
        } else {
            self.responses_error.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_ok: self.responses_ok.load(Ordering::Relaxed),
            responses_error: self.responses_error.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_classify_statuses() {
        let stats = ServerStats::default();
        stats.connection();
        stats.request();
        stats.response(200);
        stats.response(404);
        stats.response(429);
        stats.malformed();
        let snap = stats.snapshot();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.responses_ok, 1);
        assert_eq!(snap.responses_error, 1);
        assert_eq!(snap.overloaded, 1);
        assert_eq!(snap.malformed, 1);
    }
}
