//! Boot-path comparison: snapshot formats v3 vs v2 vs v1.
//!
//! A production service boots from a snapshot at every deploy and every
//! incremental-rebuild round. The three formats pay very different boot
//! costs:
//!
//! * **v1** persists the mutable `TaxonomyStore`: boot = decode the store,
//!   then a full `FrozenTaxonomy::freeze` (Tarjan SCC condensation, depth
//!   DP, ancestor-closure materialisation + per-row sorts).
//! * **v2** persists the `FrozenTaxonomy` itself: boot = decode + validate
//!   (bounds, CSR invariants, closure consistency, FNV-1a checksum).
//! * **v3** persists the varint/delta-encoded view format: boot = open a
//!   borrowed `FrozenTaxonomyView` over the buffer — structural
//!   validation over raw bytes, zero per-section allocation.
//!
//! The one-shot comparison printed before the Criterion groups makes the
//! winners (boot time and bytes on disk) visible without reading
//! Criterion output.

use cnp_taxonomy::{persist, Bytes, FrozenTaxonomy, FrozenTaxonomyView};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

struct Fixture {
    v1: Vec<u8>,
    v2: Vec<u8>,
    v3: Vec<u8>,
}

fn build_fixture() -> Fixture {
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(7)).generate();
    let outcome = cnp_core::Pipeline::new(cnp_core::PipelineConfig::fast()).run(&corpus);
    let v1 = persist::encode(&outcome.taxonomy).to_vec();
    let frozen = outcome.freeze();
    let v2 = frozen.encode().to_vec();
    let v3 = persist::encode_frozen_v3(&frozen).to_vec();
    Fixture { v1, v2, v3 }
}

fn boot_v1(bytes: &[u8]) -> FrozenTaxonomy {
    FrozenTaxonomy::freeze(&persist::decode(bytes).expect("v1 decode"))
}

fn boot_v2(bytes: &[u8]) -> FrozenTaxonomy {
    FrozenTaxonomy::decode(bytes).expect("v2 decode")
}

/// The v3 boot path as a file-backed service sees it: the read buffer
/// becomes the backing storage (here a cheap `Bytes` copy stands in for
/// the single `fs::read` allocation), and `open` validates in place.
fn boot_v3_view(bytes: &[u8]) -> FrozenTaxonomyView {
    FrozenTaxonomyView::open(Bytes::copy_from_slice(bytes)).expect("v3 open")
}

fn print_comparison(f: &Fixture) {
    let reps = 20;
    let t = Instant::now();
    for _ in 0..reps {
        black_box(boot_v1(&f.v1));
    }
    let v1_t = t.elapsed() / reps;
    let t = Instant::now();
    for _ in 0..reps {
        black_box(boot_v2(&f.v2));
    }
    let v2_t = t.elapsed() / reps;
    let t = Instant::now();
    for _ in 0..reps {
        black_box(boot_v3_view(&f.v3));
    }
    let v3_t = t.elapsed() / reps;
    let frozen = boot_v2(&f.v2);
    println!("\n============ snapshot boot: v3 vs v2 vs v1 ============");
    println!(
        "taxonomy: {} entities, {} concepts, {} isA edges",
        frozen.num_entities(),
        frozen.num_concepts(),
        frozen.num_is_a()
    );
    println!(
        "v1 snapshot {:>9} bytes   boot (decode + freeze) {:>10.1?}",
        f.v1.len(),
        v1_t
    );
    println!(
        "v2 snapshot {:>9} bytes   boot (validate-and-go) {:>10.1?}",
        f.v2.len(),
        v2_t
    );
    println!(
        "v3 snapshot {:>9} bytes   boot (borrowed view)   {:>10.1?}",
        f.v3.len(),
        v3_t
    );
    println!(
        "v3 view boot speedup over v2 {:.2}x; v3 is {:.1}% smaller than v2",
        v2_t.as_secs_f64() / v3_t.as_secs_f64().max(1e-12),
        100.0 * (1.0 - f.v3.len() as f64 / f.v2.len() as f64)
    );
    println!("=======================================================\n");
}

fn bench(c: &mut Criterion) {
    let f = build_fixture();
    print_comparison(&f);

    let mut group = c.benchmark_group("snapshot_boot");
    group.bench_function("load_v1_then_freeze", |b| {
        b.iter(|| black_box(boot_v1(black_box(&f.v1))))
    });
    group.bench_function("load_v2", |b| {
        b.iter(|| black_box(boot_v2(black_box(&f.v2))))
    });
    group.bench_function("load_v3_view", |b| {
        b.iter(|| black_box(boot_v3_view(black_box(&f.v3))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
