//! Boot-path comparison: snapshot format v2 vs v1 (ISSUE 4 tentpole).
//!
//! A production service boots from a snapshot at every deploy and every
//! incremental-rebuild round. The two formats pay very different boot
//! costs:
//!
//! * **v1** persists the mutable `TaxonomyStore`: boot = decode the store,
//!   then a full `FrozenTaxonomy::freeze` (Tarjan SCC condensation, depth
//!   DP, ancestor-closure materialisation + per-row sorts).
//! * **v2** persists the `FrozenTaxonomy` itself: boot = decode + validate
//!   (bounds, CSR invariants, closure consistency, FNV-1a checksum).
//!
//! The one-shot comparison printed before the Criterion groups makes the
//! winner visible without reading Criterion output.

use cnp_taxonomy::{persist, FrozenTaxonomy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

struct Fixture {
    v1: Vec<u8>,
    v2: Vec<u8>,
}

fn build_fixture() -> Fixture {
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(7)).generate();
    let outcome = cnp_core::Pipeline::new(cnp_core::PipelineConfig::fast()).run(&corpus);
    let v1 = persist::encode(&outcome.taxonomy).to_vec();
    let v2 = outcome.freeze().encode().to_vec();
    Fixture { v1, v2 }
}

fn boot_v1(bytes: &[u8]) -> FrozenTaxonomy {
    FrozenTaxonomy::freeze(&persist::decode(bytes).expect("v1 decode"))
}

fn boot_v2(bytes: &[u8]) -> FrozenTaxonomy {
    FrozenTaxonomy::decode(bytes).expect("v2 decode")
}

fn print_comparison(f: &Fixture) {
    let reps = 20;
    let t = Instant::now();
    for _ in 0..reps {
        black_box(boot_v1(&f.v1));
    }
    let v1_t = t.elapsed() / reps;
    let t = Instant::now();
    for _ in 0..reps {
        black_box(boot_v2(&f.v2));
    }
    let v2_t = t.elapsed() / reps;
    let frozen = boot_v2(&f.v2);
    println!("\n============== snapshot boot: v2 vs v1 ==============");
    println!(
        "taxonomy: {} entities, {} concepts, {} isA edges",
        frozen.num_entities(),
        frozen.num_concepts(),
        frozen.num_is_a()
    );
    println!(
        "v1 snapshot {:>9} bytes   boot (decode + freeze) {:>10.1?}",
        f.v1.len(),
        v1_t
    );
    println!(
        "v2 snapshot {:>9} bytes   boot (validate-and-go) {:>10.1?}",
        f.v2.len(),
        v2_t
    );
    println!(
        "v2 speedup {:.2}x",
        v1_t.as_secs_f64() / v2_t.as_secs_f64().max(1e-12)
    );
    println!("=====================================================\n");
}

fn bench(c: &mut Criterion) {
    let f = build_fixture();
    print_comparison(&f);

    let mut group = c.benchmark_group("snapshot_boot");
    group.bench_function("load_v1_then_freeze", |b| {
        b.iter(|| black_box(boot_v1(black_box(&f.v1))))
    });
    group.bench_function("load_v2", |b| {
        b.iter(|| black_box(boot_v2(black_box(&f.v2))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
