//! Mutable-store vs frozen-snapshot serving (Table II read path).
//!
//! The deployed system answers 43.9 M `men2ent` and 13.8 M `getConcept`
//! calls off an immutable snapshot. This bench builds one taxonomy and
//! serves the same query stream two ways:
//!
//! * **mutable** — the build-time `TaxonomyStore`: `Vec<Vec<_>>` adjacency,
//!   `MentionIndex`, and the mutex-guarded `AncestorCache` for transitive
//!   hypernyms (the pre-freeze serving path);
//! * **frozen** — `FrozenTaxonomy`/`ProbaseApi`: CSR adjacency and the
//!   precomputed ancestor closure, lock-free and `&self`-only.
//!
//! * **view** — `ProbaseApi<FrozenTaxonomyView>`: the same queries served
//!   from the borrowed v3 snapshot, decoding varint CSR rows and the
//!   succinct ancestor closure on the fly — the zero-copy-boot path must
//!   not give back the serving wins.
//!
//! A multi-threaded group hammers `men2ent` + `getConcept(transitive)`
//! from 8 threads to expose the mutex contention the frozen path removes.

use cnp_serve::{ProbaseApi, TaxonomyService};
use cnp_taxonomy::closure::AncestorCache;
use cnp_taxonomy::mention::MentionIndex;
use cnp_taxonomy::{persist, ConceptId, EntityId, FrozenTaxonomyView, TaxonomyRead, TaxonomyStore};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// The pre-freeze serving path, reconstructed from store-side primitives.
struct MutablePath {
    store: TaxonomyStore,
    mentions: MentionIndex,
    ancestors: AncestorCache,
}

impl MutablePath {
    fn new(mut store: TaxonomyStore) -> Self {
        let mentions = MentionIndex::build(&mut store);
        MutablePath {
            store,
            mentions,
            ancestors: AncestorCache::new(),
        }
    }

    fn men2ent(&self, mention: &str) -> Vec<EntityId> {
        self.mentions.men2ent(&self.store, mention)
    }

    fn get_concept_transitive(&self, entity: EntityId) -> Vec<String> {
        let mut out: Vec<ConceptId> = Vec::new();
        for &(c, _) in self.store.concepts_of(entity) {
            out.push(c);
        }
        let direct: Vec<ConceptId> = out.clone();
        for c in direct {
            for &a in self.ancestors.ancestors(&self.store, c).iter() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out.into_iter()
            .map(|c| self.store.concept_name(c).to_string())
            .collect()
    }
}

struct Fixture {
    mutable: MutablePath,
    api: ProbaseApi,
    /// The same taxonomy served from the borrowed v3 snapshot view — must
    /// keep pace with the owned `FrozenTaxonomy` on every query.
    view_api: ProbaseApi<FrozenTaxonomyView>,
    mentions: Vec<String>,
    entities: Vec<EntityId>,
}

fn build_fixture() -> Fixture {
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(7)).generate();
    let outcome = cnp_core::Pipeline::new(cnp_core::PipelineConfig::fast()).run(&corpus);
    let frozen = outcome.freeze();
    let v3 = persist::encode_frozen_v3(&frozen);
    let view = FrozenTaxonomyView::open(v3).expect("v3 open");
    let view_api = ProbaseApi::from_service(TaxonomyService::new(view));
    let api = ProbaseApi::from_frozen(frozen);
    let mutable = MutablePath::new(outcome.taxonomy);
    let mentions: Vec<String> = corpus
        .pages
        .iter()
        .take(4000)
        .map(|p| p.name.clone())
        .collect();
    let entities: Vec<EntityId> = mentions
        .iter()
        .filter_map(|m| api.frozen().men2ent(m).first().copied())
        .take(1000)
        .collect();
    Fixture {
        mutable,
        api,
        view_api,
        mentions,
        entities,
    }
}

/// One-shot wall-clock comparison so the winner is visible without reading
/// Criterion output: the frozen transitive `getConcept` must beat the
/// mutex-cached mutable path, single-threaded and under 8-way concurrency.
fn print_comparison(f: &Fixture) {
    let reps = 200;
    let t = Instant::now();
    for _ in 0..reps {
        for &e in &f.entities {
            black_box(f.mutable.get_concept_transitive(e));
        }
    }
    let mutable_t = t.elapsed();
    let t = Instant::now();
    for _ in 0..reps {
        for &e in &f.entities {
            black_box(f.api.get_concept(e, true));
        }
    }
    let frozen_t = t.elapsed();
    // 8 threads, the whole entity list each, long enough to amortize spawn.
    let mt_reps = 50;
    let t = Instant::now();
    run_threads(8, || {
        for _ in 0..mt_reps {
            for &e in &f.entities {
                black_box(f.mutable.get_concept_transitive(e));
            }
        }
    });
    let mutable_mt = t.elapsed();
    let t = Instant::now();
    run_threads(8, || {
        for _ in 0..mt_reps {
            for &e in &f.entities {
                black_box(f.api.get_concept(e, true));
            }
        }
    });
    let frozen_mt = t.elapsed();
    let speedup = |m: std::time::Duration, fr: std::time::Duration| {
        m.as_secs_f64() / fr.as_secs_f64().max(1e-12)
    };
    println!("\n========= frozen vs mutable: getConcept(transitive) =========");
    println!(
        "1 thread : mutable (mutex-cached) {:>10.1?}   frozen (CSR closure) {:>10.1?}   speedup {:.2}x",
        mutable_t,
        frozen_t,
        speedup(mutable_t, frozen_t)
    );
    println!(
        "8 threads: mutable (mutex-cached) {:>10.1?}   frozen (CSR closure) {:>10.1?}   speedup {:.2}x",
        mutable_mt,
        frozen_mt,
        speedup(mutable_mt, frozen_mt)
    );
    println!("=============================================================\n");
}

fn run_threads<F: Fn() + Sync>(threads: usize, work: F) {
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(&work);
        }
    });
}

fn bench(c: &mut Criterion) {
    let f = build_fixture();
    print_comparison(&f);

    let mut group = c.benchmark_group("frozen_api");
    group.bench_function("men2ent/mutable", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let m = &f.mentions[rng.gen_range(0..f.mentions.len())];
            black_box(f.mutable.men2ent(black_box(m)))
        })
    });
    group.bench_function("men2ent/frozen", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let m = &f.mentions[rng.gen_range(0..f.mentions.len())];
            black_box(f.api.frozen().men2ent(black_box(m)))
        })
    });
    group.bench_function("men2ent/view", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let m = &f.mentions[rng.gen_range(0..f.mentions.len())];
            black_box(TaxonomyRead::men2ent(f.view_api.frozen(), black_box(m)))
        })
    });
    group.bench_function("get_concept_transitive/mutable", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let e = f.entities[rng.gen_range(0..f.entities.len())];
            black_box(f.mutable.get_concept_transitive(e))
        })
    });
    group.bench_function("get_concept_transitive/frozen", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let e = f.entities[rng.gen_range(0..f.entities.len())];
            black_box(f.api.get_concept(e, true))
        })
    });
    group.bench_function("get_concept_transitive/view", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let e = f.entities[rng.gen_range(0..f.entities.len())];
            black_box(f.view_api.get_concept(e, true))
        })
    });
    // 8 threads × (men2ent + getConcept(transitive)) over a shared service:
    // the mutable side serialises on the AncestorCache mutex, the frozen
    // side never takes a lock.
    const MT_THREADS: usize = 8;
    const MT_BATCH: usize = 512;
    group.sample_size(10);
    group.bench_function("mt8_men2ent_get_concept/mutable", |b| {
        b.iter(|| {
            run_threads(MT_THREADS, || {
                let mut rng = StdRng::seed_from_u64(3);
                for _ in 0..MT_BATCH {
                    let m = &f.mentions[rng.gen_range(0..f.mentions.len())];
                    for id in f.mutable.men2ent(m) {
                        black_box(f.mutable.get_concept_transitive(id));
                    }
                }
            })
        })
    });
    group.bench_function("mt8_men2ent_get_concept/frozen", |b| {
        b.iter(|| {
            run_threads(MT_THREADS, || {
                let mut rng = StdRng::seed_from_u64(3);
                for _ in 0..MT_BATCH {
                    let m = &f.mentions[rng.gen_range(0..f.mentions.len())];
                    for &id in f.api.frozen().men2ent(m) {
                        black_box(f.api.get_concept(id, true));
                    }
                }
            })
        })
    });
    group.bench_function("mt8_men2ent_get_concept/view", |b| {
        b.iter(|| {
            run_threads(MT_THREADS, || {
                let mut rng = StdRng::seed_from_u64(3);
                for _ in 0..MT_BATCH {
                    let m = &f.mentions[rng.gen_range(0..f.mentions.len())];
                    for id in TaxonomyRead::men2ent(f.view_api.frozen(), m) {
                        black_box(f.view_api.get_concept(id, true));
                    }
                }
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
