//! **§IV-B in-text** — QA coverage experiment.
//!
//! The paper: 23 472 NLPCC-2016 questions, 21 520 covered (91.68%), with
//! 2.14 concepts per covered entity. This bench generates the same number
//! of synthetic questions, prints measured coverage, and benchmarks the
//! question-scanning throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(5)).generate();
    let outcome = cnp_core::Pipeline::new(cnp_core::PipelineConfig::fast()).run(&corpus);
    let api = cnp_serve::ProbaseApi::new(outcome.taxonomy);

    // The paper's exact question count.
    let questions = cnp_eval::generate_questions(&corpus, 23_472, 5);
    let result = cnp_eval::coverage(&api, &questions);
    println!("\n================ QA coverage (paper: 91.68%, 2.14 concepts) ================");
    println!("questions:                {}", result.questions);
    println!("covered:                  {}", result.covered);
    println!(
        "coverage:                 {:.2}%",
        result.coverage() * 100.0
    );
    println!(
        "avg concepts per entity:  {:.2}",
        result.avg_concepts_per_entity
    );
    println!("=============================================================================\n");

    let sample: Vec<cnp_eval::Question> = questions.into_iter().take(500).collect();
    let mut group = c.benchmark_group("qa_coverage");
    group.sample_size(20);
    group.bench_function("scan_500_questions", |b| {
        b.iter(|| black_box(cnp_eval::coverage(&api, black_box(&sample)).covered))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
