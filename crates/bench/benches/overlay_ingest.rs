//! Write-path benchmark: delta overlay apply vs background compaction.
//!
//! The incremental write path gives a serving node two very different
//! write costs:
//!
//! * **apply** — folding one [`DeltaOverlay`] over the current snapshot
//!   (`OverlayView::apply`): the latency a `POST /admin/ingest` pays
//!   between decode and generation swap. This must be cheap enough to run
//!   on a request worker.
//! * **compact** — replaying the whole op log onto a thawed base and
//!   re-freezing (`IngestDelta::compacted`): the background fold that
//!   collapses an overlay stack into a fresh byte-identical base. This
//!   runs on the dedicated compactor worker and bounds how fast deltas
//!   may arrive sustainably.
//!
//! The read-side tax of serving through an overlay (vs the compacted
//! base) rides along as a `men2ent` probe pair, so the trajectory file
//! records what queries pay between compactions.

use cnp_core::{Pipeline, PipelineConfig};
use cnp_runtime::Runtime;
use cnp_taxonomy::{DeltaOverlay, FrozenTaxonomy, IngestDelta, OverlayView, TaxonomyRead};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

struct Fixture {
    base: FrozenTaxonomy,
    delta: DeltaOverlay,
    mentions: Vec<String>,
}

fn build_fixture() -> Fixture {
    let pipeline = Pipeline::new(PipelineConfig::fast());
    let corpus1 =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(7)).generate();
    let corpus2 =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(8)).generate();
    let base = pipeline.run(&corpus1).freeze();
    let delta = pipeline.run(&corpus2).delta_against(&base);
    // Probe the second batch's names: the answers only exist through the
    // overlay (or the compacted base), so the read path cannot shortcut.
    let mentions = corpus2
        .pages
        .iter()
        .take(64)
        .map(|p| p.name.clone())
        .collect();
    Fixture {
        base,
        delta,
        mentions,
    }
}

fn print_comparison(f: &Fixture, rt: &Runtime) {
    let reps = 10;
    let t = Instant::now();
    for _ in 0..reps {
        black_box(OverlayView::new(f.base.clone()).apply(&f.delta));
    }
    let apply_t = t.elapsed() / reps;
    let view = OverlayView::new(f.base.clone()).apply(&f.delta);
    let t = Instant::now();
    for _ in 0..reps {
        black_box(view.compacted(rt).expect("compact"));
    }
    let compact_t = t.elapsed() / reps;
    println!("\n========= overlay ingest: apply vs compact =========");
    println!(
        "base: {} entities, {} concepts; delta: {} ops",
        f.base.num_entities(),
        f.base.num_concepts(),
        f.delta.num_ops()
    );
    println!("overlay apply (ingest latency)   {apply_t:>10.1?}");
    println!("compaction    (background fold)  {compact_t:>10.1?}");
    println!(
        "one compaction amortises over {:.1} applies",
        compact_t.as_secs_f64() / apply_t.as_secs_f64().max(1e-12)
    );
    println!("====================================================\n");
}

fn bench(c: &mut Criterion) {
    let f = build_fixture();
    let rt = Runtime::new(2);
    print_comparison(&f, &rt);

    let mut group = c.benchmark_group("overlay_ingest");
    group.bench_function("apply_delta", |b| {
        b.iter(|| black_box(OverlayView::new(f.base.clone()).apply(black_box(&f.delta))))
    });
    let view = OverlayView::new(f.base.clone()).apply(&f.delta);
    group.bench_function("compact", |b| {
        b.iter(|| black_box(view.compacted(&rt).expect("compact")))
    });
    let compacted = view.compacted(&rt).expect("compact");
    group.bench_function("men2ent_overlay", |b| {
        b.iter(|| {
            for m in &f.mentions {
                black_box(view.men2ent(black_box(m)));
            }
        })
    });
    group.bench_function("men2ent_compacted", |b| {
        b.iter(|| {
            for m in &f.mentions {
                black_box(compacted.men2ent(black_box(m)));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
