//! **§II / §IV in-text numbers** — per-source yield and precision.
//!
//! The paper reports: bracket ≈ 2 M pairs at 96.2% precision; tag source at
//! 97.4% (final); 341 predicate candidates → 12 selected; 300 k+ distant
//! supervision samples. This bench prints the measured equivalents on the
//! synthetic corpus (per-source candidate counts and exact gold precision,
//! before and after verification) and benchmarks each extraction source.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_per_source() {
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(4)).generate();
    let verified = cnp_core::Pipeline::new(cnp_core::PipelineConfig::fast()).run(&corpus);
    let raw = cnp_core::Pipeline::new(cnp_core::PipelineConfig::unverified()).run(&corpus);

    println!("\n============ Per-source precision (paper: bracket 96.2%, tag 97.4%) ============");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14}",
        "source", "raw pairs", "raw prec", "final pairs", "final prec"
    );
    let raw_by = cnp_eval::per_source(&raw.candidates, &corpus.gold);
    let fin_by = cnp_eval::per_source(&verified.candidates, &corpus.gold);
    for ((src, raw_est), (_, fin_est)) in raw_by.iter().zip(fin_by.iter()) {
        println!(
            "{:<10} {:>12} {:>11.1}% {:>14} {:>13.1}%",
            format!("{src:?}"),
            raw_est.sampled,
            raw_est.precision() * 100.0,
            fin_est.sampled,
            fin_est.precision() * 100.0
        );
    }
    println!(
        "predicate discovery: {} candidates -> {} selected (paper: 341 -> 12): {:?}",
        verified.report.predicate_candidates,
        verified.report.predicates_selected.len(),
        verified.report.predicates_selected
    );
    println!(
        "distant supervision samples: {} (paper: 300k+ at full scale)",
        verified.report.neural_samples
    );
    println!("=================================================================================\n");
}

fn bench(c: &mut Criterion) {
    print_per_source();
    let rt = cnp_runtime::Runtime::new(4);
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::tiny(4)).generate();
    let ctx = cnp_core::PipelineContext::build(&corpus, 4);

    let mut group = c.benchmark_group("source_extraction");
    group.sample_size(20);
    group.bench_function("bracket_separation_all_pages", |b| {
        b.iter(|| {
            let (cands, chains) =
                cnp_core::generation::extract_bracket(black_box(&corpus.pages), &ctx, &rt);
            black_box((cands.len(), chains.len()))
        })
    });
    group.bench_function("tag_direct_all_pages", |b| {
        b.iter(|| {
            black_box(cnp_core::generation::tag::extract(black_box(&corpus.pages), &rt).len())
        })
    });
    group.bench_function("infobox_discovery_and_extract", |b| {
        let (bracket_cands, _) = cnp_core::generation::extract_bracket(&corpus.pages, &ctx, &rt);
        let prior = cnp_core::generation::bracket_pairs_by_entity(&bracket_cands);
        b.iter(|| {
            let d = cnp_core::generation::infobox::discover_predicates(
                black_box(&corpus.pages),
                &prior,
                12,
                5,
                &rt,
            );
            black_box(cnp_core::generation::infobox::extract(&corpus.pages, &d.selected, &rt).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
