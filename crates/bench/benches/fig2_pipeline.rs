//! **Figure 2** — the generation + verification framework dataflow.
//!
//! Prints the per-stage counters of a full construction run (candidates per
//! source, removals per verification strategy, final taxonomy size) — the
//! dataflow of the paper's architecture figure — and benchmarks the two
//! module groups separately.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(2)).generate();
    let outcome = cnp_core::Pipeline::new(cnp_core::PipelineConfig::fast()).run(&corpus);
    println!("\n================ Figure 2 (framework dataflow) ================");
    print!("{}", outcome.report);
    println!("===============================================================\n");

    let tiny =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::tiny(2)).generate();
    let mut group = c.benchmark_group("fig2_pipeline");
    group.sample_size(10);
    group.bench_function("generation_plus_verification", |b| {
        b.iter(|| {
            let outcome =
                cnp_core::Pipeline::new(cnp_core::PipelineConfig::fast()).run(black_box(&tiny));
            black_box(outcome.report.final_candidates)
        })
    });
    group.bench_function("generation_only", |b| {
        b.iter(|| {
            let outcome = cnp_core::Pipeline::new(cnp_core::PipelineConfig::unverified())
                .run(black_box(&tiny));
            black_box(outcome.report.merged_candidates)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
