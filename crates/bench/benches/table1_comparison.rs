//! **Table I** — Comparisons with other taxonomies.
//!
//! Prints the four Table I rows (entities / concepts / isA / precision) for
//! Chinese WikiTaxonomy, Bigcilin, Probase-Tran and CN-Probase on a seeded
//! synthetic corpus, side by side with the paper's reported numbers, then
//! benchmarks full CN-Probase construction.
//!
//! Expected shape (scale-free): CN-Probase has the most entities/concepts/
//! isA; precision ordering WikiTaxonomy ≥ CN-Probase ≈ 95% > Bigcilin ≈ 90%
//! ≫ Probase-Tran ≈ 55%; CN-Probase ≥ 10–25× WikiTaxonomy in relations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_table() {
    let corpus = cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(42))
        .generate();
    let cmp = cnp_eval::comparison::run(&corpus, true, 42);
    println!("\n================ Table I (measured, synthetic corpus) ================");
    print!("{cmp}");
    println!("---------------- paper-reported values ----------------");
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>10}",
        "Taxonomy", "# entities", "# concepts", "# isA", "precision"
    );
    for (name, e, c, i, p) in [
        ("Chinese WikiTaxonomy", 581_616, 79_470, 1_317_956, 97.6),
        ("Bigcilin", 9_000_000, 70_000, 10_000_000, 90.0),
        ("Probase-Tran", 404_910, 151_933, 1_819_273, 54.5),
        ("CN-Probase", 15_066_667, 270_025, 32_925_306, 95.0),
    ] {
        println!("{name:<22} {e:>10} {c:>10} {i:>12} {p:>9.1}%");
    }
    println!("=======================================================================\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::tiny(42)).generate();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("cn_probase_pipeline_tiny", |b| {
        b.iter(|| {
            let outcome =
                cnp_core::Pipeline::new(cnp_core::PipelineConfig::fast()).run(black_box(&corpus));
            black_box(outcome.taxonomy.num_is_a())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
