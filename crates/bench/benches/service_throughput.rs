//! Serving API v1 throughput: per-call loop vs batched execution.
//!
//! Bulk clients (offline enrichment jobs, QA pipelines conceptualising
//! whole documents) hand the service a `Vec<Query>` instead of looping
//! over `execute`. This bench builds one taxonomy, prepares a
//! production-mix workload (the paper's Table II call volumes: men2ent
//! 43.9 M : getConcept 13.8 M : getEntity 25.8 M ≈ 8:3:5), and compares
//!
//! * **per_call** — a serial loop over `TaxonomyService::execute`;
//! * **batch/N** — one `execute_batch` on a `Runtime` with N = 1/2/4/8
//!   worker threads (identical responses, one pinned generation);
//! * **batch_view/2** — the same batch on a service backed by the
//!   borrowed v3 `FrozenTaxonomyView` instead of the owned
//!   `FrozenTaxonomy`, so any view-decode regression on the serving
//!   path shows up against `batch/2` directly.
//!
//! `execute_batch` caps its worker count by the machine's available
//! parallelism and by batch size (≥32 queries per worker), so asking for
//! more threads than cores never costs throughput.
//!
//! On a single-core CI container the batch numbers show overhead, not
//! speedup; on real cores batching scales near-linearly because every
//! query executes lock-free on the shared pinned snapshot.

use cnp_runtime::Runtime;
use cnp_serve::{ListOptions, PageRequest, Query, TaxonomyService};
use cnp_taxonomy::{persist, FrozenTaxonomyView};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const BATCH: usize = 4096;

fn build_workload() -> (cnp_taxonomy::FrozenTaxonomy, Vec<Query>) {
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(7)).generate();
    let outcome = cnp_core::Pipeline::new(cnp_core::PipelineConfig::fast()).run(&corpus);
    let frozen = outcome.freeze();
    let mentions: Vec<String> = corpus
        .pages
        .iter()
        .take(4000)
        .map(|p| p.name.clone())
        .collect();
    let concepts: Vec<String> = frozen
        .concept_ids()
        .take(2000)
        .map(|c| frozen.concept_name(c).to_string())
        .collect();
    // Table II production mix, deterministic across runs.
    let mut rng = StdRng::seed_from_u64(11);
    let queries: Vec<Query> = (0..BATCH)
        .map(|_| match rng.gen_range(0..16) {
            0..=7 => Query::men2ent(mentions[rng.gen_range(0..mentions.len())].clone()),
            8..=10 => Query::GetConceptByMention {
                mention: mentions[rng.gen_range(0..mentions.len())].clone(),
                options: ListOptions::transitive(),
            },
            _ => Query::GetEntity {
                concept: concepts[rng.gen_range(0..concepts.len())].clone(),
                options: ListOptions::transitive().with_page(PageRequest::first(50)),
            },
        })
        .collect();
    (frozen, queries)
}

/// One-shot wall-clock comparison so the scaling story is visible without
/// reading Criterion output.
fn print_comparison(frozen: &cnp_taxonomy::FrozenTaxonomy, queries: &[Query]) {
    let reps = 5;
    let serial = TaxonomyService::with_runtime(frozen.clone(), Runtime::serial());
    let t = Instant::now();
    for _ in 0..reps {
        for q in queries {
            black_box(serial.execute(q));
        }
    }
    let per_call = t.elapsed();
    println!("\n========= service_throughput: {BATCH}-query Table II mix =========");
    println!("per-call loop     : {per_call:>10.1?}");
    for threads in [1usize, 2, 4, 8] {
        let service = TaxonomyService::with_runtime(frozen.clone(), Runtime::new(threads));
        let t = Instant::now();
        for _ in 0..reps {
            black_box(service.execute_batch(queries));
        }
        let batched = t.elapsed();
        println!(
            "batch, {threads} thread(s): {batched:>10.1?}   vs per-call {:.2}x",
            per_call.as_secs_f64() / batched.as_secs_f64().max(1e-12)
        );
    }
    println!("==================================================================\n");
}

fn bench(c: &mut Criterion) {
    let (frozen, queries) = build_workload();
    print_comparison(&frozen, &queries);

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    let per_call = TaxonomyService::with_runtime(frozen.clone(), Runtime::serial());
    group.bench_function("per_call", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(per_call.execute(q));
            }
        })
    });
    for threads in [1usize, 2, 4, 8] {
        let service = TaxonomyService::with_runtime(frozen.clone(), Runtime::new(threads));
        group.bench_function(&format!("batch/{threads}"), |b| {
            b.iter(|| black_box(service.execute_batch(&queries)))
        });
        if threads == 2 {
            // Same batch, served from the borrowed v3 snapshot view —
            // measured back-to-back with `batch/2` so the owned-vs-view
            // comparison shares one machine state instead of sitting at
            // opposite ends of the run.
            let view =
                FrozenTaxonomyView::open(persist::encode_frozen_v3(&frozen)).expect("v3 open");
            let view_service = TaxonomyService::with_runtime(view, Runtime::new(2));
            group.bench_function("batch_view/2", |b| {
                b.iter(|| black_box(view_service.execute_batch(&queries)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
