//! **Ablation** — what each verification strategy contributes.
//!
//! The paper motivates three heuristics but reports only the combined 95%.
//! This bench sweeps the strategy power set (none / each alone / all) and
//! prints precision + surviving-edge counts, quantifying the design choice
//! DESIGN.md calls out; then benchmarks the verification module itself.

use cnp_core::verification::VerificationConfig;
use cnp_core::{Pipeline, PipelineConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn config_named(name: &str) -> VerificationConfig {
    match name {
        "none" => VerificationConfig::none(),
        "incompatible" => VerificationConfig {
            incompatible: Some(Default::default()),
            ..VerificationConfig::none()
        },
        "ner" => VerificationConfig {
            ner: Some(Default::default()),
            ..VerificationConfig::none()
        },
        "syntax" => VerificationConfig {
            syntax: Some(Default::default()),
            ..VerificationConfig::none()
        },
        "all" => VerificationConfig::all(),
        _ => unreachable!(),
    }
}

fn bench(c: &mut Criterion) {
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(6)).generate();

    println!("\n================ Verification ablation ================");
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "strategies", "edges", "precision", "removed"
    );
    for name in ["none", "incompatible", "ner", "syntax", "all"] {
        let mut cfg = PipelineConfig::fast();
        cfg.verification = config_named(name);
        let outcome = Pipeline::new(cfg).run(&corpus);
        let est = cnp_eval::estimate(&outcome.candidates, &corpus.gold, 2_000, 6);
        println!(
            "{:<14} {:>10} {:>11.1}% {:>10}",
            name,
            outcome.candidates.len(),
            est.precision() * 100.0,
            outcome.report.verification.total()
        );
    }
    println!("(paper: all three strategies combined reach 95.0%)");
    println!("=======================================================\n");

    // Benchmark the verification module in isolation on a fixed candidate
    // set (generation re-run once).
    let tiny =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::tiny(6)).generate();
    let ctx = cnp_core::PipelineContext::build(&tiny, 4);
    let rt = cnp_runtime::Runtime::new(4);
    let raw = Pipeline::new(PipelineConfig::unverified()).run(&tiny);
    let mut group = c.benchmark_group("verification");
    group.sample_size(20);
    for name in ["incompatible", "ner", "syntax", "all"] {
        let cfg = config_named(name);
        group.bench_function(name, |b| {
            b.iter(|| {
                let set = cnp_core::candidate::CandidateSet {
                    items: raw.candidates.items.clone(),
                };
                let (out, report) =
                    cnp_core::verification::verify(set, black_box(&tiny.pages), &ctx, &cfg, &rt);
                black_box((out.len(), report.total()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
