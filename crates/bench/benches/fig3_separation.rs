//! **Figure 3** — the separation algorithm on 蚂蚁金服首席战略官.
//!
//! Prints the paper's worked example (segmentation, PMI-guided binary tree,
//! rightmost-path hypernyms) using statistics learned from the synthetic
//! corpus, then benchmarks separation throughput over generated brackets.

use cnp_core::generation::bracket::{SepNode, SeparationAlgorithm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn render(node: &SepNode) -> String {
    match node {
        SepNode::Leaf(w) => w.clone(),
        SepNode::Branch(l, r) => format!("({} ⊕ {})", render(l), render(r)),
    }
}

fn bench(c: &mut Criterion) {
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(3)).generate();
    let ctx = cnp_core::PipelineContext::build(&corpus, 4);
    let alg = SeparationAlgorithm::new(&ctx.segmenter, &ctx.pmi);

    println!("\n================ Figure 3 (separation algorithm) ================");
    for compound in ["蚂蚁金服首席战略官", "中国香港男演员", "星辰科技首席执行官"]
    {
        let words = ctx.segmenter.words(compound);
        match alg.separate_compound(compound) {
            Some(r) => {
                println!("compound : {compound}");
                println!("  segmented: {words:?}");
                println!("  tree     : {}", render(&r.tree));
                println!("  hypernyms: {:?}", r.hypernyms);
            }
            None => println!("compound : {compound} -> (no hypernyms)"),
        }
    }
    println!("(paper: 蚂蚁金服首席战略官 → {{首席战略官, 战略官}}, bracket source");
    println!(" yields ~2M isA relations at 96.2% precision)");
    println!("=================================================================\n");

    // Throughput over real generated brackets.
    let brackets: Vec<&str> = corpus
        .pages
        .iter()
        .filter_map(|p| p.bracket.as_deref())
        .take(2000)
        .collect();
    assert!(!brackets.is_empty());
    let mut group = c.benchmark_group("fig3_separation");
    group.bench_function("separate_bracket", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let br = brackets[i % brackets.len()];
            i += 1;
            black_box(alg.separate(black_box(br)).len())
        })
    });
    group.bench_function("segment_bracket_only", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let br = brackets[i % brackets.len()];
            i += 1;
            black_box(ctx.segmenter.words(black_box(br)).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
