//! Tagging workload throughput: direct `Tagger` calls vs the serving path.
//!
//! The second serving workload (`cnp_tag`) runs whole documents through
//! segmentation → span resolution → hierarchical concept scoring, so its
//! cost profile is very different from the point lookups of Table II.
//! This bench builds one pipeline-produced taxonomy, takes the corpus's
//! own page abstracts as the document set (real vocabulary hit-rate, not
//! synthetic strings), and measures
//!
//! * **tag/direct** — `Tagger::tag` in a serial loop (spans + concepts);
//! * **classify/direct** — `Tagger::classify`, the concepts-only variant
//!   the eval harness and `/v1/tag?classify=1` use;
//! * **tag/service** — the same documents as `Query::Tag` through
//!   `TaxonomyService::execute`, pricing the wire-facing layer (per-query
//!   dispatch + per-generation tag-index reuse);
//! * **tag/batch2** — one `execute_batch` on a 2-thread runtime, the
//!   shape `cnp_load --tag-ratio` drives in CI.
//!
//! The one-shot table up front prints docs/s so the bench trajectory in
//! BENCH_*.json has a human-readable anchor without parsing Criterion
//! output.

use cnp_serve::{Query, TaxonomyService};
use cnp_tag::{TagOptions, Tagger};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Documents per iteration: enough to amortise setup, small enough that
/// a Criterion sample stays under a second on a CI container.
const DOCS: usize = 256;

fn build_workload() -> (cnp_taxonomy::FrozenTaxonomy, Vec<String>) {
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(7)).generate();
    let outcome = cnp_core::Pipeline::new(cnp_core::PipelineConfig::fast()).run(&corpus);
    let frozen = outcome.freeze();
    // The corpus's own abstracts: every document mentions taxonomy
    // entities by construction, so the tagger exercises the full
    // resolve-and-score path instead of falling through to OOV handling.
    let docs: Vec<String> = corpus
        .pages
        .iter()
        .take(DOCS)
        .map(|p| p.abstract_text.clone())
        .collect();
    (frozen, docs)
}

/// One-shot docs/s comparison so the workload's scale is visible without
/// reading Criterion output.
fn print_comparison(frozen: &cnp_taxonomy::FrozenTaxonomy, docs: &[String]) {
    let options = TagOptions::default();
    let tagger = Tagger::new(Arc::new(frozen.clone()));
    let reps = 3;
    let t = Instant::now();
    for _ in 0..reps {
        for doc in docs {
            black_box(tagger.tag(doc, &options));
        }
    }
    let direct = t.elapsed();
    let service = TaxonomyService::new(frozen.clone());
    let queries: Vec<Query> = docs
        .iter()
        .map(|doc| Query::Tag {
            text: doc.clone(),
            options: options.clone(),
        })
        .collect();
    let t = Instant::now();
    for _ in 0..reps {
        for q in &queries {
            black_box(service.execute(q));
        }
    }
    let served = t.elapsed();
    let docs_per_sec =
        |d: std::time::Duration| (reps * docs.len()) as f64 / d.as_secs_f64().max(1e-12);
    println!(
        "\n========= tagging_throughput: {} documents =========",
        docs.len()
    );
    println!(
        "tag, direct : {direct:>10.1?}   {:>9.0} docs/s",
        docs_per_sec(direct)
    );
    println!(
        "tag, served : {served:>10.1?}   {:>9.0} docs/s",
        docs_per_sec(served)
    );
    println!("=====================================================\n");
}

fn bench(c: &mut Criterion) {
    let (frozen, docs) = build_workload();
    print_comparison(&frozen, &docs);

    let mut group = c.benchmark_group("tagging_throughput");
    group.sample_size(10);

    let options = TagOptions::default();
    let tagger = Tagger::new(Arc::new(frozen.clone()));
    group.bench_function("tag/direct", |b| {
        b.iter(|| {
            for doc in &docs {
                black_box(tagger.tag(doc, &options));
            }
        })
    });
    group.bench_function("classify/direct", |b| {
        b.iter(|| {
            for doc in &docs {
                black_box(tagger.classify(doc, &options));
            }
        })
    });

    let queries: Vec<Query> = docs
        .iter()
        .map(|doc| Query::Tag {
            text: doc.clone(),
            options: options.clone(),
        })
        .collect();
    let service = TaxonomyService::new(frozen.clone());
    group.bench_function("tag/service", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(service.execute(q));
            }
        })
    });
    let batch_service = TaxonomyService::with_runtime(frozen.clone(), cnp_runtime::Runtime::new(2));
    group.bench_function("tag/batch2", |b| {
        b.iter(|| black_box(batch_service.execute_batch(&queries)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
