//! **Pipeline scaling** — end-to-end `Pipeline::run` wall-clock versus
//! worker-thread count.
//!
//! Every stage executes on the shared `cnp_runtime` layer, so the thread
//! knob now reaches all nine stages instead of just bracket extraction and
//! context building. Output is thread-count-independent by construction
//! (the determinism suite asserts it); this bench measures the only thing
//! that is allowed to change — speed. A one-shot comparison on the larger
//! corpus prints first; the Criterion group then iterates the tiny corpus
//! at 1/2/4/8 threads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config_with_threads(threads: usize) -> cnp_core::PipelineConfig {
    cnp_core::PipelineConfig {
        threads,
        ..cnp_core::PipelineConfig::fast()
    }
}

fn print_scaling_table() {
    let corpus = cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(11))
        .generate();
    println!("\n================ pipeline scaling (small corpus, one shot) ================");
    let mut baseline = None;
    for threads in THREAD_COUNTS {
        let clock = std::time::Instant::now();
        let outcome = cnp_core::Pipeline::new(config_with_threads(threads)).run(&corpus);
        let secs = clock.elapsed().as_secs_f64();
        let base = *baseline.get_or_insert(secs);
        println!(
            "  threads={threads}: {secs:>6.2} s  (speedup {:>4.2}x, {} final candidates)",
            base / secs,
            outcome.report.final_candidates
        );
    }
    println!("===========================================================================\n");
}

fn bench(c: &mut Criterion) {
    print_scaling_table();
    let tiny =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::tiny(11)).generate();
    let mut group = c.benchmark_group("pipeline_scaling");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_function(&format!("run_threads_{threads}"), |b| {
            let config = config_with_threads(threads);
            b.iter(|| {
                let outcome = cnp_core::Pipeline::new(config.clone()).run(black_box(&tiny));
                black_box(outcome.report.final_candidates)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
