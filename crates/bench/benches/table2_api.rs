//! **Table II** — APIs and their descriptions / usage.
//!
//! The paper reports the three deployed APIs and their call volumes over
//! six months (men2ent 43.9 M, getConcept 13.8 M, getEntity 25.8 M). This
//! bench builds a taxonomy, prints the Table II rows with the call mix, and
//! measures per-call latency of each API plus the production-mix workload.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

struct Fixture {
    api: cnp_serve::ProbaseApi,
    mentions: Vec<String>,
    concepts: Vec<String>,
}

fn build_fixture() -> Fixture {
    let corpus =
        cnp_encyclopedia::CorpusGenerator::new(cnp_encyclopedia::CorpusConfig::small(7)).generate();
    let outcome = cnp_core::Pipeline::new(cnp_core::PipelineConfig::fast()).run(&corpus);
    let mentions: Vec<String> = corpus
        .pages
        .iter()
        .take(4000)
        .map(|p| p.name.clone())
        .collect();
    let api = cnp_serve::ProbaseApi::new(outcome.taxonomy);
    let concepts: Vec<String> = api
        .frozen()
        .concept_ids()
        .take(2000)
        .map(|c| api.frozen().concept_name(c).to_string())
        .collect();
    Fixture {
        api,
        mentions,
        concepts,
    }
}

fn print_table(f: &Fixture) {
    println!("\n================ Table II (APIs) ================");
    println!(
        "{:<12} {:<10} {:<16} {:>12}",
        "API name", "Given", "Return", "paper calls"
    );
    println!(
        "{:<12} {:<10} {:<16} {:>12}",
        "men2ent", "mention", "entity", 43_896_044
    );
    println!(
        "{:<12} {:<10} {:<16} {:>12}",
        "getConcept", "entity", "hypernym list", 13_815_076
    );
    println!(
        "{:<12} {:<10} {:<16} {:>12}",
        "getEntity", "concept", "hyponym list", 25_793_372
    );
    // A smoke sample so the printed table reflects live behaviour.
    let sample = &f.mentions[0];
    let senses = f.api.men2ent(sample);
    println!(
        "live sample: men2ent({sample:?}) -> {} sense(s){}",
        senses.len(),
        senses
            .first()
            .map(|s| format!(", getConcept -> {:?}", f.api.get_concept(s.id, true)))
            .unwrap_or_default()
    );
    println!("=================================================\n");
}

fn bench(c: &mut Criterion) {
    let f = build_fixture();
    print_table(&f);

    let mut group = c.benchmark_group("table2_api");
    group.bench_function("men2ent", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let m = &f.mentions[rng.gen_range(0..f.mentions.len())];
            black_box(f.api.men2ent(black_box(m)))
        })
    });
    group.bench_function("get_concept_transitive", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let senses: Vec<_> = f
            .mentions
            .iter()
            .filter_map(|m| f.api.men2ent(m).into_iter().next())
            .take(1000)
            .collect();
        b.iter(|| {
            let s = &senses[rng.gen_range(0..senses.len())];
            black_box(f.api.get_concept(s.id, true))
        })
    });
    group.bench_function("get_entity_limit100", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let c = &f.concepts[rng.gen_range(0..f.concepts.len())];
            black_box(f.api.get_entity(black_box(c), true, 100))
        })
    });
    // The production mix of Table II: 52.6% men2ent, 16.5% getConcept,
    // 30.9% getEntity.
    group.bench_function("production_mix", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let senses: Vec<_> = f
            .mentions
            .iter()
            .filter_map(|m| f.api.men2ent(m).into_iter().next())
            .take(1000)
            .collect();
        b.iter(|| {
            let roll: f64 = rng.gen();
            if roll < 0.526 {
                let m = &f.mentions[rng.gen_range(0..f.mentions.len())];
                black_box(f.api.men2ent(m).len())
            } else if roll < 0.691 {
                let s = &senses[rng.gen_range(0..senses.len())];
                black_box(f.api.get_concept(s.id, true).len())
            } else {
                let c = &f.concepts[rng.gen_range(0..f.concepts.len())];
                black_box(f.api.get_entity(c, true, 100).len())
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
