#![forbid(unsafe_code)]
//! # cnp-bench — benchmark harness for CN-Probase
//!
//! One Criterion bench per table/figure of the paper (see DESIGN.md §3 for
//! the experiment index). Every bench prints the measured table/series next
//! to the paper-reported values before running its timing loops:
//!
//! * `table1_comparison` — Table I four-system comparison.
//! * `table2_api` — Table II APIs (call mix + latency).
//! * `fig2_pipeline` — Figure 2 framework dataflow and stage timings.
//! * `fig3_separation` — Figure 3 separation-algorithm example + throughput.
//! * `source_precision` — §II in-text per-source yield/precision.
//! * `qa_coverage` — §IV-B QA coverage experiment.
//! * `ablation_verification` — verification-strategy power-set ablation.
