//! Golden-file tests over the fixture corpus.
//!
//! Every `tests/fixtures/{good,bad}/*.rs` file starts with a `//@ path:`
//! directive naming the workspace-relative path the file pretends to live
//! at (that path decides which rules apply). `good/` fixtures must lint
//! clean; each `bad/` fixture's diagnostics must match its `.expected`
//! sibling byte for byte.
//!
//! Regenerate the goldens after an intentional diagnostic change with:
//!
//! ```sh
//! CNP_LINT_BLESS=1 cargo test -p cnp_lint --test fixtures
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
}

/// Reads a fixture, honoring its `//@ path:` directive. The directive
/// line stays in the linted source so golden line numbers match the file
/// as committed.
fn lint_fixture(path: &Path) -> (String, Vec<cnp_lint::Finding>) {
    let src = fs::read_to_string(path).expect("read fixture");
    let first = src.lines().next().unwrap_or_default();
    let rel = first
        .strip_prefix("//@ path:")
        .unwrap_or_else(|| panic!("{} must start with `//@ path: <rel>`", path.display()))
        .trim()
        .to_string();
    let findings = cnp_lint::check_file(&rel, &src);
    (rel, findings)
}

fn render(findings: &[cnp_lint::Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        writeln!(out, "{f}").expect("write to string");
    }
    out
}

fn fixtures(kind: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(fixture_dir(kind))
        .expect("fixture dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no {kind} fixtures found");
    files
}

#[test]
fn good_fixtures_lint_clean() {
    for path in fixtures("good") {
        let (rel, findings) = lint_fixture(&path);
        assert!(
            findings.is_empty(),
            "{} (as {rel}) should be clean, got:\n{}",
            path.display(),
            render(&findings)
        );
    }
}

#[test]
fn bad_fixtures_match_goldens() {
    let bless = std::env::var_os("CNP_LINT_BLESS").is_some();
    for path in fixtures("bad") {
        let (rel, findings) = lint_fixture(&path);
        assert!(
            !findings.is_empty(),
            "{} (as {rel}) is a bad fixture but produced no findings",
            path.display()
        );
        let got = render(&findings);
        let golden = path.with_extension("expected");
        if bless {
            fs::write(&golden, &got).expect("bless golden");
            continue;
        }
        let want = fs::read_to_string(&golden).unwrap_or_else(|_| {
            panic!(
                "missing golden {} — run CNP_LINT_BLESS=1 cargo test -p cnp_lint --test fixtures",
                golden.display()
            )
        });
        assert_eq!(
            got,
            want,
            "diagnostics for {} diverged from {}",
            path.display(),
            golden.display()
        );
    }
}

/// Each bad fixture exercises the rule family its name announces.
#[test]
fn bad_fixtures_cover_every_rule() {
    let mut seen: Vec<&str> = Vec::new();
    for path in fixtures("bad") {
        let (_, findings) = lint_fixture(&path);
        for f in &findings {
            if !seen.contains(&f.rule) {
                seen.push(f.rule);
            }
        }
    }
    for rule in cnp_lint::RULES {
        assert!(
            seen.contains(&rule.name),
            "no bad fixture triggers rule {}",
            rule.name
        );
    }
    assert!(
        seen.contains(&"bad-annotation"),
        "no fixture covers bad-annotation"
    );
}
