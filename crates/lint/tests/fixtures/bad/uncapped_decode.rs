//@ path: crates/serve/src/wire.rs
//! Length-driven allocations with no clamp in a decode path.

pub fn decode(buf: &[u8]) -> Vec<Vec<u8>> {
    let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let len = buf.len();
        let row = vec![0u8; len * 1024];
        rows.push(row);
    }
    rows.reserve(n * 2);
    rows
}
