//@ path: crates/tag/src/score.rs
//! Tagger code violating both rules that govern `crates/tag`: panicking
//! constructs on the serving path and nondeterminism in scoring.

pub fn score(senses: Option<u32>, spans: &[u8]) -> u8 {
    let n = senses.unwrap();
    let started = Instant::now();
    let mut mass = FxHashMap::default();
    mass.insert(n, started);
    for (concept, weight) in &mass {
        emit(concept, weight);
    }
    spans[0]
}
