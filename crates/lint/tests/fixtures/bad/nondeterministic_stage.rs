//@ path: crates/core/src/generation/sample.rs
//! Clock reads, unseeded randomness, and hash-order iteration in a
//! pipeline stage.

use std::collections::HashMap;
use std::time::Instant;

pub fn stage(items: &[(String, u32)]) -> Vec<String> {
    let started = Instant::now();
    let mut counts: HashMap<&str, u32> = HashMap::new();
    for (name, n) in items {
        *counts.entry(name.as_str()).or_insert(0) += n;
    }
    let mut out = Vec::new();
    for (name, _) in &counts {
        out.push(name.to_string());
    }
    counts.keys().for_each(|_| {});
    let _jitter: f64 = rand::random();
    let _rng = thread_rng();
    let _ = started.elapsed();
    out
}
