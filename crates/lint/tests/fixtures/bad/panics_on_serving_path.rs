//@ path: crates/serve/src/exec.rs
//! Every panicking construct the no-panic rule names, in serving scope.

pub fn handle(input: Option<u32>, xs: &[u8]) -> u8 {
    let v = input.unwrap();
    let w = input.expect("present");
    if v + w == 0 {
        panic!("zero");
    }
    if xs.is_empty() {
        unreachable!();
    }
    xs[0]
}

pub fn later() {
    todo!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v: Option<u8> = None;
        v.unwrap();
    }
}
