//@ path: crates/serve/src/overlay_sidestep.rs
//! A serving helper that peels the overlay stack apart and matches delta
//! segments directly, instead of reading through `TaxonomyRead`.

use cnp_taxonomy::overlay::DeltaOp;

/// Counts pending entity inserts by walking the raw op log.
pub fn pending_entities(view: &OverlayView<FrozenTaxonomy>) -> usize {
    let mut n = 0;
    for overlay in view.overlays() {
        for op in overlay.log_ops() {
            if let DeltaOp::Entity { .. } = op {
                n += 1;
            }
        }
    }
    n
}
