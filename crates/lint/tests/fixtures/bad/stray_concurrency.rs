//@ path: crates/core/src/generation/fetch.rs
//! Concurrency primitives outside `cnp_runtime`.

use std::sync::Mutex;

pub fn fan_out() {
    let shared = Mutex::new(Vec::new());
    let h = std::thread::spawn(move || {});
    let _scope = crossbeam::scope(|_| {});
    h.join().ok();
    drop(shared);
}
