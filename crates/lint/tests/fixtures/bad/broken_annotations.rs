//@ path: crates/serve/src/exec.rs
//! Every way a suppression annotation can go wrong.

pub fn f(v: Option<u32>) -> u32 {
    // A reason is mandatory:
    let a = v.unwrap(); // cnp-lint: allow(no-panic-serving-path)
    // The reason must be non-empty:
    let b = v.unwrap(); // cnp-lint: allow(no-panic-serving-path) reason=""
    // The rule must exist:
    let c = v.unwrap(); // cnp-lint: allow(no-such-rule) reason="typo"
    // cnp-lint: allow(capped-decode) reason="stale: suppresses nothing here"
    a + b + c
}
