//@ path: crates/taxonomy/src/view.rs
//! Varint-decoded counts feeding preallocations without a clamp — the
//! hostile-snapshot OOM shape the v3 decoder must never have.

pub fn decode_rows(buf: &mut &[u8]) -> Result<Vec<Vec<u32>>, PersistError> {
    let rows = read_varint(buf, "rows")? as usize;
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let len = read_varint(buf, "row len")? as usize;
        let mut row = Vec::new();
        row.reserve(len);
        out.push(row);
    }
    Ok(out)
}

pub fn decode_bitmap(buf: &[u8]) -> Option<Vec<bool>> {
    let (base, next) = varint_at(buf, 0)?;
    let bits = vec![false; base as usize];
    let _ = next;
    Some(bits)
}
