//@ path: crates/tag/src/score.rs
//! The disciplined shape of tagger code: `cnp_tag` is serving-path *and*
//! determinism scope, so scores accumulate in ordered containers, spans
//! index with `.get`, and nothing touches clocks or ambient RNG.

use std::collections::BTreeMap;

pub fn accumulate(evidence: &[(u32, f64)], first: &[u8]) -> Vec<(u32, f64)> {
    // BTreeMap iteration order is the key order — deterministic.
    let mut mass: BTreeMap<u32, f64> = BTreeMap::new();
    for &(concept, weight) in evidence {
        *mass.entry(concept).or_insert(0.0) += weight;
    }
    let lead = first.get(0).copied().unwrap_or(0);
    let mut ranked: Vec<(u32, f64)> = mass.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(usize::from(lead).max(1));
    ranked
}
