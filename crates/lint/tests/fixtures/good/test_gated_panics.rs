//@ path: crates/server/src/session.rs
//! Panics and raw threads inside test-gated regions are out of scope:
//! tests may unwrap, spawn, and index at will.

pub fn serving(value: Option<u8>) -> u8 {
    value.unwrap_or_default()
}

#[test]
fn a_bare_test_function() {
    let xs = [1u8, 2];
    assert_eq!(xs[0], serving(Some(1)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_are_fine_here() {
        let h = std::thread::spawn(|| serving(None));
        assert_eq!(h.join().unwrap(), 0);
        let v: Option<u8> = None;
        assert!(std::panic::catch_unwind(|| v.unwrap()).is_err());
    }
}
