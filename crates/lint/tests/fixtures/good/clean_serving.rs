//@ path: crates/serve/src/exec.rs
//! The disciplined version of the serving path: typed errors, `.get`,
//! clamped allocations — nothing for any rule to say.

pub enum QueryError {
    Missing,
}

pub fn handle(input: Option<u32>, xs: &[u8]) -> Result<u8, QueryError> {
    let v = input.ok_or(QueryError::Missing)?;
    let first = xs.get(0).copied().ok_or(QueryError::Missing)?;
    // unwrap_or and array types are not panics:
    let fallback = input.unwrap_or(0);
    let _mask: [u8; 4] = [0; 4];
    Ok(first ^ (v as u8) ^ (fallback as u8))
}
