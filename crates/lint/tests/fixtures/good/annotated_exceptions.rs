//@ path: crates/serve/src/exec.rs
//! Real violations, each carried by a well-formed allow with a reason —
//! and every allow is used, so none is stale.

pub fn boot(config: Option<u32>) -> u32 {
    // cnp-lint: allow(no-panic-serving-path) reason="boot-time config read; the process has not started serving yet"
    let v = config.unwrap();
    // cnp-lint: allow(runtime-owns-concurrency) reason="fixture: demonstrating a sanctioned lock"
    let lock = std::sync::Mutex::new(v);
    *lock.lock().unwrap_or_else(|e| e.into_inner())
}
