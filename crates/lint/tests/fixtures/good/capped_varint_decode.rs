//@ path: crates/taxonomy/src/view.rs
//! Varint-decoded counts, properly clamped before every preallocation:
//! the shape the v3 view decoder uses. A raw wire count may claim
//! u64::MAX; capping by the remaining input bytes bounds the allocation
//! by the snapshot's actual size.

pub fn decode_rows(buf: &mut &[u8]) -> Result<Vec<Vec<u32>>, PersistError> {
    let rows = read_varint(buf, "rows")? as usize;
    // Each row costs at least one payload byte, so `remaining` bounds it.
    let mut out = Vec::with_capacity(rows.min(buf.remaining()));
    for _ in 0..rows {
        let len = read_varint(buf, "row len")? as usize;
        let mut row = Vec::new();
        row.reserve(len.min(buf.remaining()));
        out.push(row);
    }
    Ok(out)
}

pub fn decode_dir(buf: &[u8]) -> Option<Vec<u32>> {
    let (n, _next) = varint_at(buf, 0)?;
    let capped = (n as usize).min(buf.len() / 4);
    let mut dir = Vec::with_capacity(capped.min(MAX_SECTIONS));
    dir.push(0);
    Some(dir)
}
