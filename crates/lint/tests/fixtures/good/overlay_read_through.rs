//@ path: crates/serve/src/overlay_reader.rs
//! The sanctioned shape: base+deltas are served through `TaxonomyRead`,
//! so callers never see whether an answer came from the frozen base or a
//! pending overlay segment.

/// Resolves a mention against whatever the view currently merges.
pub fn resolve(view: &dyn TaxonomyRead, mention: &str) -> usize {
    view.men2ent(mention).len()
}

/// Applying a whole sidecar (not matching its segments) is a read-through
/// operation too: the overlay fold happens inside `OverlayView::apply`.
pub fn ingest(view: &OverlayView<FrozenTaxonomy>, delta: &DeltaOverlay) -> OverlayView<FrozenTaxonomy> {
    view.apply(delta)
}
