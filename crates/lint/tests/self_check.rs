//! The repo lints itself: the workspace this crate ships in must uphold
//! every invariant `cnp_lint` codifies. This is the same gate CI's
//! `static-analysis` job runs via the CLI — kept as a test so plain
//! `cargo test` catches a regression before CI does.

use std::path::Path;

#[test]
fn the_workspace_upholds_its_own_invariants() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint");
    assert!(
        root.join("Cargo.toml").is_file() && root.join("crates").is_dir(),
        "resolved {root:?} is not the workspace root"
    );
    let findings = cnp_lint::lint_root(root).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "the repo violates its own invariants:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
