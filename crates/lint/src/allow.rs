//! The suppression grammar: `// cnp-lint: allow(<rule>) reason="…"`.
//!
//! An annotation on the same line as the offending code suppresses that
//! rule on that line; an annotation alone on its own line suppresses the
//! rule on the next code line (the common rustfmt-friendly placement).
//! `allow-file(<rule>)` suppresses the rule for the whole file and must
//! appear in the first 20 lines, next to the module docs.
//!
//! The `reason` is **mandatory and non-empty**: a suppression without a
//! recorded justification is itself a finding, as is a reference to a
//! rule that does not exist and an allow that suppresses nothing (stale
//! annotations rot the invariant they were cut into).

use crate::diag::Finding;
use crate::lexer::Comment;
use crate::rules::rule_exists;

/// How far an annotation reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reach {
    /// The annotation's own line (trailing comment).
    Line(u32),
    /// The whole file (`allow-file`).
    File,
}

/// One parsed, well-formed allow annotation.
#[derive(Debug)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// Where the suppression applies.
    pub reach: Reach,
    /// Line the annotation itself sits on (for unused-allow reporting).
    pub at_line: u32,
    /// Set when a suppressed finding consumed this allow.
    pub used: std::cell::Cell<bool>,
}

/// All annotations of one file plus the findings produced by malformed
/// ones.
#[derive(Debug, Default)]
pub struct Allows {
    /// Well-formed annotations.
    pub allows: Vec<Allow>,
    /// Malformed-annotation findings (missing reason, unknown rule…).
    pub errors: Vec<Finding>,
}

impl Allows {
    /// Whether `rule` is suppressed at `line`, marking the matching
    /// annotation used.
    pub fn suppresses(&self, rule: &str, line: u32) -> bool {
        for a in &self.allows {
            let hit = a.rule == rule
                && match a.reach {
                    Reach::File => true,
                    Reach::Line(l) => l == line,
                };
            if hit {
                a.used.set(true);
                return true;
            }
        }
        false
    }

    /// Findings for annotations that suppressed nothing.
    pub fn unused(&self, file: &str) -> Vec<Finding> {
        self.allows
            .iter()
            .filter(|a| !a.used.get())
            .map(|a| {
                Finding::new(
                file,
                a.at_line,
                1,
                "bad-annotation",
                format!("allow({}) suppresses nothing", a.rule),
                "remove the stale annotation (or it will mask a future regression at this line)",
            )
            })
            .collect()
    }
}

const MARKER: &str = "cnp-lint:";

/// Extracts annotations from a file's comments. `code_line_after` maps an
/// own-line comment to the next line holding code (so a comment directly
/// above the offending statement suppresses it).
pub fn parse_allows(
    file: &str,
    comments: &[Comment],
    mut code_line_after: impl FnMut(u32) -> Option<u32>,
) -> Allows {
    let mut out = Allows::default();
    for c in comments {
        // The marker must LEAD the comment (after doc-comment `/`/`!`
        // sigils) — prose that merely *mentions* `cnp-lint:` mid-sentence,
        // like this module's own docs, is not an annotation.
        let lead = c.text.trim_start_matches(['/', '!', ' ', '\t']);
        let Some(body) = lead.strip_prefix(MARKER) else {
            continue;
        };
        let body = body.trim();
        match parse_one(body) {
            Ok((rule, file_wide)) => {
                if !rule_exists(&rule) {
                    out.errors.push(Finding::new(
                        file,
                        c.line,
                        c.col,
                        "bad-annotation",
                        format!("unknown rule {rule:?} in cnp-lint allow"),
                        "use one of the names listed by `cnp_lint --list-rules`",
                    ));
                    continue;
                }
                let reach = if file_wide {
                    if c.line > 20 {
                        out.errors.push(Finding::new(
                            file,
                            c.line,
                            c.col,
                            "bad-annotation",
                            "allow-file must appear in the first 20 lines".to_string(),
                            "move the annotation next to the module docs, or use per-line allow",
                        ));
                        continue;
                    }
                    Reach::File
                } else if c.own_line {
                    match code_line_after(c.line) {
                        Some(next) => Reach::Line(next),
                        None => Reach::Line(c.line),
                    }
                } else {
                    Reach::Line(c.line)
                };
                out.allows.push(Allow {
                    rule,
                    reach,
                    at_line: c.line,
                    used: std::cell::Cell::new(false),
                });
            }
            Err(why) => out.errors.push(Finding::new(
                file,
                c.line,
                c.col,
                "bad-annotation",
                why.to_string(),
                "write `// cnp-lint: allow(<rule>) reason=\"non-empty justification\"`",
            )),
        }
    }
    out
}

/// Parses the annotation body after the `cnp-lint:` marker. Returns the
/// rule name and whether it is file-wide.
fn parse_one(body: &str) -> Result<(String, bool), &'static str> {
    let (keyword, rest) = match body.find('(') {
        Some(i) => (body[..i].trim(), &body[i + 1..]),
        None => return Err("expected allow(<rule>) after cnp-lint:"),
    };
    let file_wide = match keyword {
        "allow" => false,
        "allow-file" => true,
        _ => return Err("expected allow(<rule>) or allow-file(<rule>)"),
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed rule name parenthesis");
    };
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() || rule.contains(',') {
        return Err("exactly one rule name per annotation");
    }
    let tail = rest[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("reason=") else {
        return Err("missing mandatory reason=\"…\"");
    };
    let reason = reason.trim();
    let inner = reason
        .strip_prefix('"')
        .and_then(|r| r.find('"').map(|end| &r[..end]));
    match inner {
        Some(text) if !text.trim().is_empty() => Ok((rule, file_wide)),
        Some(_) => Err("reason must not be empty"),
        None => Err("reason must be a double-quoted string"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Allows {
        let lexed = lex(src).expect("lex");
        let toks = lexed.toks;
        parse_allows("f.rs", &lexed.comments, move |line| {
            toks.iter().map(|t| t.line).find(|&l| l > line)
        })
    }

    #[test]
    fn trailing_allow_reaches_its_own_line() {
        let a =
            parse("x.unwrap(); // cnp-lint: allow(no-panic-serving-path) reason=\"test rig\"\n");
        assert_eq!(a.errors.len(), 0);
        assert_eq!(a.allows.len(), 1);
        assert_eq!(a.allows[0].reach, Reach::Line(1));
        assert!(a.suppresses("no-panic-serving-path", 1));
        assert!(!a.suppresses("capped-decode", 1));
    }

    #[test]
    fn own_line_allow_reaches_next_code_line() {
        let a = parse(
            "// cnp-lint: allow(capped-decode) reason=\"len checked above\"\nlet v = vec![0; n];\n",
        );
        assert_eq!(a.allows[0].reach, Reach::Line(2));
    }

    #[test]
    fn missing_or_empty_reason_is_a_finding() {
        for bad in [
            "x(); // cnp-lint: allow(capped-decode)",
            "x(); // cnp-lint: allow(capped-decode) reason=\"\"",
            "x(); // cnp-lint: allow(capped-decode) reason=none",
            "x(); // cnp-lint: deny(capped-decode) reason=\"x\"",
        ] {
            let a = parse(bad);
            assert_eq!(a.errors.len(), 1, "no finding for {bad:?}");
            assert_eq!(a.allows.len(), 0);
        }
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let a = parse("x(); // cnp-lint: allow(no-such-rule) reason=\"hm\"");
        assert_eq!(a.errors.len(), 1);
        assert!(a.errors[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_allows_are_reported() {
        let a = parse("x(); // cnp-lint: allow(capped-decode) reason=\"nothing here\"");
        let unused = a.unused("f.rs");
        assert_eq!(unused.len(), 1);
        assert!(unused[0].message.contains("suppresses nothing"));
    }
}
