//! A hand-rolled Rust lexer — just enough tokenization for invariant
//! scanning, in the same no-new-dependencies discipline as the repo's
//! hand-rolled HTTP and JSON layers (no `syn`, no `proc-macro2`).
//!
//! The lexer produces a flat token stream with `line:col` positions and a
//! separate comment list (the rule engine reads `// cnp-lint:` annotations
//! out of the comments). It understands everything that could make a
//! naive text scan lie about code:
//!
//! - line comments, nested block comments, doc comments;
//! - string literals with escapes, byte strings, raw (byte) strings with
//!   arbitrary `#` fencing, char literals;
//! - lifetimes vs char literals (`'a` vs `'a'`);
//! - numeric literals with underscores, base prefixes, suffixes and
//!   exponents.
//!
//! `unwrap` inside a string or a comment is *not* a token, so rules never
//! fire on prose — a guarantee grep-based enforcement cannot give.

use std::fmt;

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (the rule engine does not distinguish).
    Ident,
    /// A lifetime such as `'a` (without the quote in [`Tok::text`]).
    Lifetime,
    /// An integer literal (any base, with suffix/underscores verbatim).
    Int,
    /// A float literal.
    Float,
    /// A string / raw string / byte string literal (contents dropped).
    Str,
    /// A char or byte-char literal.
    Char,
    /// A single punctuation byte (`.`, `:`, `!`, `[`, …).
    Punct,
}

/// One token with its source position (1-based line and column, counted
/// in characters so diagnostics point where editors expect).
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token kind.
    pub kind: TokKind,
    /// The token text (empty for [`TokKind::Str`] — contents are
    /// irrelevant to every rule and would only bloat the stream).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in chars).
    pub col: u32,
}

impl Tok {
    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is exactly the given identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// A comment with its position; `text` excludes the delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Comment body without `//`, `/*` or `*/`.
    pub text: String,
    /// `true` when no token precedes the comment on its starting line —
    /// an "own-line" comment, which annotation parsing treats as applying
    /// to the next code line instead of its own.
    pub own_line: bool,
}

/// Why lexing failed. Scanned files are workspace members that already
/// compile, so in practice this only fires on hand-broken fixtures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the failure.
    pub line: u32,
    /// 1-based column of the failure.
    pub col: u32,
    /// What was malformed.
    pub message: &'static str,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// The lexed file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes Rust source text.
pub fn lex(src: &str) -> Result<Lexed, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut lx = Lexer {
        chars: &chars,
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
        last_tok_line: 0,
    };
    lx.run()?;
    Ok(lx.out)
}

struct Lexer<'a> {
    chars: &'a [char],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
    /// Line of the most recently emitted token; lets comments know
    /// whether they are alone on their line.
    last_tok_line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: &'static str) -> LexError {
        LexError {
            line: self.line,
            col: self.col,
            message,
        }
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.last_tok_line = line;
        self.out.toks.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(&mut self) -> Result<(), LexError> {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(line, col)?,
                '"' => self.string(line, col)?,
                'r' | 'b' if self.raw_or_byte_literal(line, col)? => {}
                '\'' => self.char_or_lifetime(line, col)?,
                c if is_ident_start(c) => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
        Ok(())
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump(); // the two slashes
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let own_line = self.last_tok_line != line;
        self.out.comments.push(Comment {
            line,
            col,
            text,
            own_line,
        });
    }

    fn block_comment(&mut self, line: u32, col: u32) -> Result<(), LexError> {
        self.bump();
        self.bump(); // `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        loop {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth == 0 {
                        break;
                    }
                    text.push_str("*/");
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => return Err(self.err("unterminated block comment")),
            }
        }
        let own_line = self.last_tok_line != line;
        self.out.comments.push(Comment {
            line,
            col,
            text,
            own_line,
        });
        Ok(())
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` — returns
    /// `false` (consuming nothing) when the `r`/`b` is just an identifier
    /// start, so the caller falls through to [`Lexer::ident`].
    fn raw_or_byte_literal(&mut self, line: u32, col: u32) -> Result<bool, LexError> {
        let mut ahead = 1; // past the leading r / b
        let first = self.peek().ok_or_else(|| self.err("eof"))?;
        if first == 'b' {
            match self.peek_at(1) {
                Some('\'') => {
                    // b'…' byte char
                    self.bump();
                    self.bump();
                    self.char_body()?;
                    self.push(TokKind::Char, String::new(), line, col);
                    return Ok(true);
                }
                Some('"') => {
                    self.bump();
                    self.string(line, col)?;
                    return Ok(true);
                }
                Some('r') => ahead = 2,
                _ => return Ok(false),
            }
        }
        // `r` (or `br`) — raw string only if followed by `#`* then `"`.
        let mut hashes = 0usize;
        while self.peek_at(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek_at(ahead + hashes) != Some('"') {
            return Ok(false); // plain identifier like `row` / `break_cycles`
        }
        for _ in 0..ahead + hashes + 1 {
            self.bump();
        }
        // Scan to `"` followed by `hashes` hashes.
        loop {
            match self.bump() {
                Some('"') => {
                    let mut n = 0;
                    while n < hashes && self.peek() == Some('#') {
                        self.bump();
                        n += 1;
                    }
                    if n == hashes {
                        break;
                    }
                }
                Some(_) => {}
                None => return Err(self.err("unterminated raw string")),
            }
        }
        self.push(TokKind::Str, String::new(), line, col);
        Ok(true)
    }

    fn string(&mut self, line: u32, col: u32) -> Result<(), LexError> {
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => {
                    self.bump(); // the escaped char, whatever it is
                }
                Some(_) => {}
                None => return Err(self.err("unterminated string")),
            }
        }
        self.push(TokKind::Str, String::new(), line, col);
        Ok(())
    }

    /// After the opening `'` of a char literal: consumes the body and the
    /// closing quote.
    fn char_body(&mut self) -> Result<(), LexError> {
        match self.bump() {
            Some('\\') => {
                self.bump();
                // Multi-char escapes (\u{…}, \x41) — consume to the quote.
                while let Some(c) = self.peek() {
                    if c == '\'' {
                        break;
                    }
                    self.bump();
                }
            }
            Some(_) => {}
            None => return Err(self.err("unterminated char literal")),
        }
        if self.bump() != Some('\'') {
            return Err(self.err("unterminated char literal"));
        }
        Ok(())
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) -> Result<(), LexError> {
        // `'a'` is a char; `'a` (no closing quote after one char) is a
        // lifetime; `'\n'` is a char.
        let next = self.peek_at(1);
        let after = self.peek_at(2);
        let is_lifetime = match next {
            Some(c) if is_ident_start(c) => after != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // quote
            let mut name = String::new();
            while let Some(c) = self.peek() {
                if is_ident_continue(c) {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, name, line, col);
        } else {
            self.bump(); // quote
            self.char_body()?;
            self.push(TokKind::Char, String::new(), line, col);
        }
        Ok(())
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut float = false;
        // Base prefix?
        if self.peek() == Some('0') && matches!(self.peek_at(1), Some('x' | 'o' | 'b')) {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // Fraction: only when a digit follows the dot (so `0..n` and
            // `x.0.min(…)` tokenize as punctuation, not a float tail).
            if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            // Exponent.
            if matches!(self.peek(), Some('e' | 'E'))
                && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit() || c == '+' || c == '-')
            {
                float = true;
                text.push('e');
                self.bump();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == '+' || c == '-' || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`u32`, `f64`, `usize`…) glues onto the literal.
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                if matches!(c, 'f') {
                    float = true;
                }
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, text, line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .expect("lex")
            .toks
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_punct_numbers() {
        let toks = lex("let x = a.unwrap() + 0x1F_u32;").expect("lex");
        let kinds: Vec<_> = toks
            .toks
            .iter()
            .map(|t| (t.kind, t.text.as_str()))
            .collect();
        assert!(kinds.contains(&(TokKind::Ident, "unwrap")));
        assert!(kinds.contains(&(TokKind::Int, "0x1F_u32")));
        assert!(kinds.contains(&(TokKind::Punct, ";")));
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let h = '#';
        let src = format!(
            "// unwrap in a comment\n\
             /* unwrap /* nested */ still comment */\n\
             let s = \"calls .unwrap() inside\";\n\
             let r = r{h}\"raw unwrap\"{h};\n"
        );
        let toks = lex(&src).expect("lex");
        assert!(
            !toks.toks.iter().any(|t| t.text == "unwrap"),
            "unwrap leaked out of a string or comment: {:?}",
            toks.toks
        );
        assert_eq!(toks.comments.len(), 2);
        assert!(toks.comments[0].text.contains("unwrap in a comment"));
        assert!(toks.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").expect("lex");
        let lifetimes: Vec<_> = toks
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(
            toks.toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
    }

    #[test]
    fn byte_and_escape_literals() {
        let toks =
            lex(r"let a = b'\n'; let b = b(); let c = '\u{1F600}'; let d = r;").expect("lex");
        assert_eq!(
            toks.toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
        // `b` and `r` survive as plain identifiers when not literal prefixes.
        assert_eq!(texts("b r br").len(), 3);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bc\n").expect("lex");
        assert_eq!((toks.toks[0].line, toks.toks[0].col), (1, 1));
        assert_eq!((toks.toks[1].line, toks.toks[1].col), (2, 3));
    }

    #[test]
    fn own_line_comment_flag() {
        let toks = lex("let x = 1; // trailing\n// own line\nlet y = 2;").expect("lex");
        assert!(!toks.comments[0].own_line);
        assert!(toks.comments[1].own_line);
    }

    #[test]
    fn range_and_method_on_int_are_not_floats() {
        let toks = lex("for i in 0..10 { x.0.min(1); }").expect("lex");
        assert!(toks.toks.iter().all(|t| t.kind != TokKind::Float));
    }

    #[test]
    fn unterminated_inputs_error_cleanly() {
        for bad in ["\"abc", "/* never closed", "'", "r#\"open"] {
            assert!(lex(bad).is_err(), "accepted {bad:?}");
        }
    }
}
