//! The codified repo invariants, as named, testable rules.
//!
//! Each rule pairs a *path scope* (which first-party files the invariant
//! governs) with a *token pattern* (what violates it). Scopes are part of
//! the contract: the no-panic rule owns the serving path, the determinism
//! rule owns pipeline-stage and freeze code, the capped-decode rule owns
//! the hostile-input decoders. Rules skip test-gated regions (tests may
//! `unwrap` and spawn threads) and honor the suppression grammar of
//! [`crate::allow`].

use crate::allow::{parse_allows, Allows};
use crate::diag::Finding;
use crate::lexer::{lex, LexError, Tok, TokKind};
use crate::scope::{find_test_regions, TestRegions};

/// Rule 1: no panicking construct on the serving path.
pub const NO_PANIC: &str = "no-panic-serving-path";
/// Rule 2: concurrency primitives live in `cnp_runtime` only.
pub const RUNTIME_OWNS: &str = "runtime-owns-concurrency";
/// Rule 3: pipeline-stage and freeze code must be deterministic.
pub const DETERMINISM: &str = "determinism-contract";
/// Rule 4: decoder allocations must be clamped by remaining input.
pub const CAPPED_DECODE: &str = "capped-decode";
/// Rule 5: delta segments are consumed only by the overlay write path.
pub const OVERLAY_READ_THROUGH: &str = "overlay-read-through";
/// Meta rule: malformed / stale suppression annotations.
pub const BAD_ANNOTATION: &str = "bad-annotation";
/// Meta rule: a scanned file the lexer could not tokenize.
pub const LEX_ERROR: &str = "lex-error";

/// One rule's name and contract, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Kebab-case rule name (the annotation grammar refers to this).
    pub name: &'static str,
    /// The invariant the rule enforces.
    pub summary: &'static str,
    /// Which files the rule governs.
    pub scope: &'static str,
}

/// The suppressible rules (meta rules cannot be `allow`ed away).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: NO_PANIC,
        summary:
            "no unwrap/expect/panic!/unreachable!/todo!/unimplemented!/slice-index-by-literal \
                  in non-test serving code",
        scope: "crates/serve/src, crates/server/src, crates/tag/src, \
                crates/taxonomy/src/{frozen,view,read,varint}.rs",
    },
    RuleInfo {
        name: RUNTIME_OWNS,
        summary: "crossbeam, thread::{spawn,Builder,scope} and raw Mutex/RwLock construction only \
                  inside cnp_runtime (allowlisted: the cnp_server accept loop + worker pool)",
        scope: "all first-party src outside crates/runtime",
    },
    RuleInfo {
        name: DETERMINISM,
        summary: "no Instant::now/SystemTime/unseeded RNG, and no hash-map/set iteration, in \
                  pipeline-stage and freeze code",
        scope: "crates/core/src, crates/tag/src, crates/taxonomy/src/{frozen,topo}.rs",
    },
    RuleInfo {
        name: CAPPED_DECODE,
        summary: "decode-path with_capacity/reserve/vec![x; n] must be clamped by remaining input \
                  bytes or a constant cap; counts decoded through the varint readers \
                  (read_varint/varint_at) are called out by name",
        scope: "crates/taxonomy/src/{persist,view,varint}.rs, crates/serve/src/{wire,json}.rs, \
                crates/server/src/http.rs",
    },
    RuleInfo {
        name: OVERLAY_READ_THROUGH,
        summary: "delta segments (DeltaOp / the overlay op log) are consumed only by overlay.rs, \
                  compact.rs and the persist sidecar codec; every other layer reads base+deltas \
                  through TaxonomyRead",
        scope: "all first-party src outside crates/taxonomy/src/{overlay,compact,persist}.rs",
    },
];

/// Whether `name` is a rule the annotation grammar may reference.
pub fn rule_exists(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Documented, compiled-in exceptions: `(file, rule, reason)`. A finding
/// for `rule` in `file` is suppressed without an inline annotation; the
/// reason is part of the codified contract (and printed by
/// `--list-rules`).
pub const BUILTIN_ALLOWS: &[(&str, &str, &str)] = &[(
    "crates/server/src/server.rs",
    RUNTIME_OWNS,
    "the HTTP accept loop and its worker pool deliberately sit on named std threads feeding \
     cnp_runtime::BoundedQueue — the one sanctioned thread nursery outside the runtime crate",
)];

fn builtin_allowed(file: &str, rule: &str) -> bool {
    BUILTIN_ALLOWS
        .iter()
        .any(|&(f, r, _)| f == file && r == rule)
}

// ----- path scopes ----------------------------------------------------------

fn no_panic_scope(rel: &str) -> bool {
    rel.starts_with("crates/serve/src/")
        || rel.starts_with("crates/server/src/")
        // The tagger executes inside serving workers (Query::Tag); it is
        // serving-path code from day one.
        || rel.starts_with("crates/tag/src/")
        || matches!(
            rel,
            "crates/taxonomy/src/frozen.rs"
                | "crates/taxonomy/src/view.rs"
                | "crates/taxonomy/src/read.rs"
                | "crates/taxonomy/src/varint.rs"
        )
}

fn runtime_owns_scope(rel: &str) -> bool {
    !rel.starts_with("crates/runtime/")
}

fn determinism_scope(rel: &str) -> bool {
    rel.starts_with("crates/core/src/")
        // Tag responses are part of the byte-identical-across-backends
        // contract, so scoring must be a pure function of its input.
        || rel.starts_with("crates/tag/src/")
        || rel == "crates/taxonomy/src/frozen.rs"
        || rel == "crates/taxonomy/src/topo.rs"
}

fn capped_decode_scope(rel: &str) -> bool {
    matches!(
        rel,
        "crates/taxonomy/src/persist.rs"
            | "crates/taxonomy/src/view.rs"
            | "crates/taxonomy/src/varint.rs"
            | "crates/serve/src/wire.rs"
            | "crates/serve/src/json.rs"
            | "crates/server/src/http.rs"
    )
}

fn overlay_read_through_scope(rel: &str) -> bool {
    !matches!(
        rel,
        "crates/taxonomy/src/overlay.rs"
            | "crates/taxonomy/src/compact.rs"
            | "crates/taxonomy/src/persist.rs"
    )
}

// ----- the checker ----------------------------------------------------------

/// Lints one file's source. `rel` is the workspace-relative path (forward
/// slashes) that decides which rules apply. Returns sorted findings.
pub fn check_file(rel: &str, src: &str) -> Vec<Finding> {
    let lexed = match lex(src) {
        Ok(lexed) => lexed,
        Err(LexError { line, col, message }) => {
            return vec![Finding::new(
                rel,
                line,
                col,
                LEX_ERROR,
                format!("cannot tokenize file: {message}"),
                "fix the malformed source; the invariant scan cannot vouch for this file",
            )]
        }
    };
    let toks = &lexed.toks;
    let tests = find_test_regions(toks);
    let tok_lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
    let allows = parse_allows(rel, &lexed.comments, |line| {
        tok_lines.iter().copied().find(|&l| l > line)
    });

    let mut ctx = Ctx {
        rel,
        toks,
        tests: &tests,
        allows: &allows,
        findings: Vec::new(),
    };
    if no_panic_scope(rel) {
        ctx.rule_no_panic();
    }
    if runtime_owns_scope(rel) {
        ctx.rule_runtime_owns();
    }
    if determinism_scope(rel) {
        ctx.rule_determinism();
    }
    if capped_decode_scope(rel) {
        ctx.rule_capped_decode();
    }
    if overlay_read_through_scope(rel) {
        ctx.rule_overlay_read_through();
    }

    let mut findings = ctx.findings;
    findings.extend(allows.errors.iter().cloned());
    findings.extend(allows.unused(rel));
    findings.sort_by_key(Finding::sort_key);
    findings
}

struct Ctx<'a> {
    rel: &'a str,
    toks: &'a [Tok],
    tests: &'a TestRegions,
    allows: &'a Allows,
    findings: Vec<Finding>,
}

impl<'a> Ctx<'a> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(c))
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.tok(i) {
            Some(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    /// `toks[i..]` starts with `a :: b`.
    fn is_path_seg(&self, i: usize, a: &str, b: &str) -> bool {
        self.toks[i].is_ident(a)
            && self.is_punct(i + 1, ':')
            && self.is_punct(i + 2, ':')
            && self.tok(i + 3).is_some_and(|t| t.is_ident(b))
    }

    /// Emits `finding` unless the position is test-gated, suppressed by an
    /// annotation, or covered by the compiled-in allowlist.
    fn emit(&mut self, at: &Tok, rule: &'static str, message: String, suggestion: &'static str) {
        if self.tests.contains(at.line)
            || builtin_allowed(self.rel, rule)
            || self.allows.suppresses(rule, at.line)
        {
            return;
        }
        self.findings.push(Finding::new(
            self.rel, at.line, at.col, rule, message, suggestion,
        ));
    }

    // ----- rule 1: no-panic-serving-path -----------------------------------

    fn rule_no_panic(&mut self) {
        for i in 0..self.toks.len() {
            let t = &self.toks[i];
            if t.kind == TokKind::Ident {
                if matches!(t.text.as_str(), "unwrap" | "expect")
                    && i > 0
                    && self.is_punct(i - 1, '.')
                    && self.is_punct(i + 1, '(')
                {
                    let msg = format!("`.{}(…)` can panic on the serving path", t.text);
                    self.emit(
                        &t.clone(),
                        NO_PANIC,
                        msg,
                        "return a typed error (QueryError/HttpError/PersistError) instead",
                    );
                } else if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && self.is_punct(i + 1, '!')
                {
                    let msg = format!("`{}!` aborts a serving worker", t.text);
                    self.emit(
                        &t.clone(),
                        NO_PANIC,
                        msg,
                        "make the impossible state a typed error; a poisoned worker drops its connection",
                    );
                }
            } else if t.is_punct('[')
                && i > 0
                && self
                    .tok(i - 1)
                    .is_some_and(|p| p.kind == TokKind::Ident || p.is_punct(')') || p.is_punct(']'))
                && self.tok(i + 1).is_some_and(|n| n.kind == TokKind::Int)
                && self.is_punct(i + 2, ']')
            {
                let at = self.toks[i + 1].clone();
                let msg = format!(
                    "slice index `[{}]` can panic on out-of-range input",
                    at.text
                );
                self.emit(&at, NO_PANIC, msg, "use `.get(…)` and handle the None");
            }
        }
    }

    // ----- rule 2: runtime-owns-concurrency --------------------------------

    fn rule_runtime_owns(&mut self) {
        for i in 0..self.toks.len() {
            let t = &self.toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "crossbeam" => {
                    self.emit(
                        &t.clone(),
                        RUNTIME_OWNS,
                        "`crossbeam` is runtime-internal".to_string(),
                        "use the cnp_runtime facade (par_* / BoundedQueue / WorkerPool)",
                    );
                }
                "thread" => {
                    for target in ["spawn", "Builder", "scope"] {
                        if self.is_path_seg(i, "thread", target) {
                            let msg = format!(
                                "`thread::{target}` outside cnp_runtime fragments the threading model"
                            );
                            self.emit(
                                &t.clone(),
                                RUNTIME_OWNS,
                                msg,
                                "run the work on cnp_runtime (par_tasks / WorkerPool) so thread \
                                 count and determinism stay centrally governed",
                            );
                        }
                    }
                }
                name @ ("Mutex" | "RwLock") if self.is_path_seg(i, name, "new") => {
                    let msg = format!(
                        "raw `{name}::new` outside cnp_runtime adds an unvetted lock to the serving story"
                    );
                    self.emit(
                        &t.clone(),
                        RUNTIME_OWNS,
                        msg,
                        "keep locks inside cnp_runtime primitives, or annotate why this one is \
                         off the query path",
                    );
                }
                _ => {}
            }
        }
    }

    // ----- rule 3: determinism-contract -------------------------------------

    fn rule_determinism(&mut self) {
        let hash_names = self.collect_hash_bindings();
        for i in 0..self.toks.len() {
            let t = &self.toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "Instant" if self.is_path_seg(i, "Instant", "now") => {
                    self.emit(
                        &t.clone(),
                        DETERMINISM,
                        "`Instant::now` reads the wall clock inside deterministic code".to_string(),
                        "hoist timing to the caller (PipelineReport::time_stage) so stage output \
                         is a pure function of its input",
                    );
                }
                "SystemTime" => {
                    self.emit(
                        &t.clone(),
                        DETERMINISM,
                        "`SystemTime` makes stage output depend on the wall clock".to_string(),
                        "thread timestamps in as explicit inputs",
                    );
                }
                "thread_rng" | "from_entropy" => {
                    let msg = format!("`{}` seeds an RNG from the environment", t.text);
                    self.emit(
                        &t.clone(),
                        DETERMINISM,
                        msg,
                        "use a seeded StdRng (seed_from_u64) so reruns are bit-identical",
                    );
                }
                "rand" if self.is_path_seg(i, "rand", "random") => {
                    self.emit(
                        &t.clone(),
                        DETERMINISM,
                        "`rand::random` draws from an unseeded RNG".to_string(),
                        "use a seeded StdRng (seed_from_u64) so reruns are bit-identical",
                    );
                }
                name if hash_names.iter().any(|h| h == name) => {
                    // `name.iter()` / `for x in &name {`-style iteration.
                    if self.is_punct(i + 1, '.')
                        && matches!(
                            self.ident_at(i + 2),
                            Some(
                                "iter"
                                    | "iter_mut"
                                    | "keys"
                                    | "values"
                                    | "values_mut"
                                    | "into_iter"
                                    | "into_keys"
                                    | "into_values"
                                    | "drain"
                            )
                        )
                        && self.is_punct(i + 3, '(')
                    {
                        let msg = format!(
                            "iterating hash container `{}` feeds nondeterministic order into \
                             pipeline/freeze output",
                            t.text
                        );
                        self.emit(
                            &t.clone(),
                            DETERMINISM,
                            msg,
                            "collect and sort before emitting, or restore first-occurrence order \
                             via cnp_runtime::par_shard_fold",
                        );
                    } else if i >= 1 && self.prev_is_for_in(i) && self.is_punct(i + 1, '{') {
                        let msg = format!(
                            "`for … in {}` iterates a hash container in nondeterministic order",
                            t.text
                        );
                        self.emit(
                            &t.clone(),
                            DETERMINISM,
                            msg,
                            "collect and sort before emitting, or restore first-occurrence order \
                             via cnp_runtime::par_shard_fold",
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// `toks[i]` is preceded by `in` (with optional `&` / `mut`) — the
    /// iteration subject of a `for` loop.
    fn prev_is_for_in(&self, i: usize) -> bool {
        let mut j = i;
        while j > 0 {
            j -= 1;
            let p = &self.toks[j];
            if p.is_punct('&') || p.is_ident("mut") {
                continue;
            }
            return p.is_ident("in");
        }
        false
    }

    /// Names bound to hash containers in this file: `let [mut] NAME … =
    /// FxHashMap::…;` bindings and `NAME: HashMap<…>` struct fields /
    /// ascriptions.
    fn collect_hash_bindings(&self) -> Vec<String> {
        const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
        let mut names = Vec::new();
        let toks = self.toks;
        for i in 0..toks.len() {
            if toks[i].is_ident("let") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                let Some(name) = self.ident_at(j) else {
                    continue;
                };
                // Scan the binding's statement (to `;` at bracket depth 0)
                // for a hash-container type name.
                let name = name.to_string();
                let mut depth = 0i32;
                for t in &toks[j + 1..] {
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                    } else if t.is_punct(';') && depth <= 0 {
                        break;
                    } else if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                        names.push(name.clone());
                        break;
                    }
                }
            } else if toks[i].kind == TokKind::Ident
                && self.is_punct(i + 1, ':')
                && !self.is_punct(i + 2, ':')
                && matches!(self.ident_at(i + 2), Some(ty) if HASH_TYPES.contains(&ty))
            {
                names.push(toks[i].text.clone());
            }
        }
        names.sort();
        names.dedup();
        names
    }

    // ----- rule 4: capped-decode --------------------------------------------

    fn rule_capped_decode(&mut self) {
        let varint_names = self.collect_varint_bindings();
        for i in 0..self.toks.len() {
            let t = &self.toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "with_capacity" | "reserve" | "reserve_exact" if self.is_punct(i + 1, '(') => {
                    let args = self.group_inner(i + 1);
                    if !args_are_capped(args) {
                        let msg = match varint_arg(args, &varint_names) {
                            Some(name) => format!(
                                "`{}` sized by the varint-decoded count `{name}` — a raw wire \
                                 value — can pre-allocate unboundedly",
                                t.text
                            ),
                            None => format!(
                                "`{}` sized by untrusted input can pre-allocate unboundedly",
                                t.text
                            ),
                        };
                        self.emit(
                            &t.clone(),
                            CAPPED_DECODE,
                            msg,
                            "clamp by remaining input bytes (`n.min(buf.remaining() / elem_size)`) \
                             or a named constant cap",
                        );
                    }
                }
                "vec" if self.is_punct(i + 1, '!') && self.is_punct(i + 2, '[') => {
                    let inner = self.group_inner(i + 2);
                    // Only the `vec![elem; len]` repeat form allocates by a
                    // length expression.
                    let mut depth = 0i32;
                    let mut semi = None;
                    for (k, a) in inner.iter().enumerate() {
                        if a.is_punct('(') || a.is_punct('[') || a.is_punct('{') {
                            depth += 1;
                        } else if a.is_punct(')') || a.is_punct(']') || a.is_punct('}') {
                            depth -= 1;
                        } else if a.is_punct(';') && depth == 0 {
                            semi = Some(k);
                            break;
                        }
                    }
                    if let Some(k) = semi {
                        let len_args = &inner[k + 1..];
                        if !args_are_capped(len_args) {
                            let msg = match varint_arg(len_args, &varint_names) {
                                Some(name) => format!(
                                    "`vec![…; n]` sized by the varint-decoded count `{name}` — a \
                                     raw wire value — can allocate unboundedly"
                                ),
                                None => "`vec![…; n]` with an input-derived length can allocate \
                                         unboundedly"
                                    .to_string(),
                            };
                            self.emit(
                                &t.clone(),
                                CAPPED_DECODE,
                                msg,
                                "clamp by remaining input bytes (`n.min(buf.remaining() / elem_size)`) \
                                 or a named constant cap",
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Names bound by statements that decode through the varint readers:
    /// `let n = read_varint(…)?`, `let (v, next) = varint_at(…)`, and any
    /// other `let` whose initializer mentions `read_varint` / `varint_at`.
    /// Every identifier in the pattern (before the `=`) is recorded — a
    /// tuple pattern binds all its names.
    fn collect_varint_bindings(&self) -> Vec<String> {
        const VARINT_READERS: [&str; 2] = ["read_varint", "varint_at"];
        let mut names = Vec::new();
        let toks = self.toks;
        for i in 0..toks.len() {
            if !toks[i].is_ident("let") {
                continue;
            }
            // Pattern: idents up to the `=` at depth 0 (skipping `mut`).
            let mut pattern = Vec::new();
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut eq = None;
            while let Some(t) = toks.get(j) {
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_punct('=') && depth <= 0 {
                    eq = Some(j);
                    break;
                } else if t.is_punct(';') && depth <= 0 {
                    break;
                } else if t.kind == TokKind::Ident && !t.is_ident("mut") {
                    pattern.push(t.text.clone());
                }
                j += 1;
            }
            let Some(eq) = eq else { continue };
            // Initializer: to the `;` at depth 0; varint reader mentioned?
            let mut depth = 0i32;
            let mut decodes_varint = false;
            for t in &toks[eq + 1..] {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct(';') && depth <= 0 {
                    break;
                } else if t.kind == TokKind::Ident && VARINT_READERS.contains(&t.text.as_str()) {
                    decodes_varint = true;
                }
            }
            if decodes_varint {
                names.extend(pattern);
            }
        }
        names.sort();
        names.dedup();
        names
    }

    /// The tokens strictly inside the bracket group opened at `open_idx`.
    fn group_inner(&self, open_idx: usize) -> &'a [Tok] {
        let toks = self.toks;
        let Some(open) = toks.get(open_idx) else {
            return &[];
        };
        let close_char = match () {
            _ if open.is_punct('(') => ')',
            _ if open.is_punct('[') => ']',
            _ if open.is_punct('{') => '}',
            _ => return &[],
        };
        let open_char = open.text.chars().next().unwrap_or('(');
        let mut depth = 0usize;
        for (i, t) in toks.iter().enumerate().skip(open_idx) {
            if t.is_punct(open_char) {
                depth += 1;
            } else if t.is_punct(close_char) {
                depth -= 1;
                if depth == 0 {
                    return &toks[open_idx + 1..i];
                }
            }
        }
        &[]
    }

    // ----- rule 5: overlay-read-through -------------------------------------

    fn rule_overlay_read_through(&mut self) {
        for i in 0..self.toks.len() {
            let t = &self.toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "DeltaOp" => {
                    self.emit(
                        &t.clone(),
                        OVERLAY_READ_THROUGH,
                        "`DeltaOp` handled outside the overlay write path — delta segments are \
                         an implementation detail of the op log"
                            .to_string(),
                        "serve base+deltas through TaxonomyRead (an OverlayView); only \
                         overlay.rs, compact.rs and the persist codec may consume delta ops",
                    );
                }
                "log_ops" if self.is_punct(i + 1, '(') => {
                    self.emit(
                        &t.clone(),
                        OVERLAY_READ_THROUGH,
                        "`log_ops()` exposes the raw overlay op log outside the write path"
                            .to_string(),
                        "query the merged view through TaxonomyRead; compaction \
                         (IngestDelta::compacted) is the only sanctioned log consumer",
                    );
                }
                _ => {}
            }
        }
    }
}

/// An allocation-size argument is considered capped when it is clamped
/// (`.min(…)` / anything mentioning the remaining input) or when it is a
/// compile-time constant (only literals and SCREAMING_CASE idents).
fn args_are_capped(args: &[Tok]) -> bool {
    if args.is_empty() {
        return true; // `reserve()`-style degenerate call; nothing to cap
    }
    let mentions_clamp = args
        .iter()
        .any(|t| t.kind == TokKind::Ident && (t.text == "min" || t.text.contains("remaining")));
    if mentions_clamp {
        return true;
    }
    args.iter().all(|t| match t.kind {
        TokKind::Int | TokKind::Float | TokKind::Punct => true,
        TokKind::Ident => is_const_ident(&t.text),
        _ => false,
    })
}

/// The first allocation-size argument that names a varint-decoded
/// binding, if any — it upgrades the finding to the varint-specific
/// message.
fn varint_arg<'n>(args: &[Tok], varint_names: &'n [String]) -> Option<&'n str> {
    args.iter().find_map(|t| {
        if t.kind != TokKind::Ident {
            return None;
        }
        varint_names
            .iter()
            .find(|n| n.as_str() == t.text)
            .map(String::as_str)
    })
}

/// `MAX_BODY_BYTES`-style constant names (and `usize`-ish suffix idents in
/// cast expressions like `1 << 16 as usize`).
fn is_const_ident(name: &str) -> bool {
    name.chars()
        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
        || matches!(name, "usize" | "u64" | "u32" | "u16" | "u8" | "as")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        check_file(rel, src)
    }

    #[test]
    fn unwrap_on_serving_path_fires_with_position() {
        let f = findings("crates/serve/src/x.rs", "fn f() {\n    v.unwrap();\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].col, f[0].rule), (2, 7, NO_PANIC));
    }

    #[test]
    fn unwrap_outside_scope_or_in_tests_is_fine() {
        assert!(findings("crates/text/src/x.rs", "fn f() { v.unwrap(); }").is_empty());
        let src = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { v.unwrap(); panic!(); }\n}\n";
        assert!(findings("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_macros_and_literal_index_fire() {
        let src = "fn f(xs: &[u8]) -> u8 {\n  if bad { panic!(\"no\"); }\n  xs[0]\n}\n";
        let f = findings("crates/server/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("panic!"));
        assert!(f[1].message.contains("slice index"));
        // …but unwrap_or / array types / vec! / attributes do not.
        let ok = "fn g() { let a: [u8; 4] = [0; 4]; v.unwrap_or(1); let w = vec![1]; }\n#[rustfmt::skip]\nfn h() {}\n";
        assert!(findings("crates/server/src/x.rs", ok).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_and_must_be_used() {
        let src = "fn f() {\n  v.unwrap(); // cnp-lint: allow(no-panic-serving-path) reason=\"boot-time only\"\n}\n";
        assert!(findings("crates/serve/src/x.rs", src).is_empty());
        let stale = "fn f() {\n  // cnp-lint: allow(no-panic-serving-path) reason=\"nothing\"\n  clean();\n}\n";
        let f = findings("crates/serve/src/x.rs", stale);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, BAD_ANNOTATION);
    }

    #[test]
    fn concurrency_tokens_fire_outside_runtime_only() {
        let src = "fn f() { std::thread::spawn(|| {}); let m = Mutex::new(0); crossbeam::scope(|s| {}); }";
        let f = findings("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 3);
        assert!(findings("crates/runtime/src/x.rs", src).is_empty());
        // The compiled-in server accept-loop exception.
        assert!(findings(
            "crates/server/src/server.rs",
            "fn f() { thread::Builder::new(); }"
        )
        .is_empty());
    }

    #[test]
    fn determinism_catches_clocks_rngs_and_hash_iteration() {
        let src = "fn f() {\n  let t = Instant::now();\n  let mut m = FxHashMap::default();\n  for (k, v) in &m { emit(k); }\n  let s: HashSet<u32> = HashSet::new();\n  s.iter().for_each(drop);\n  let r = thread_rng();\n}\n";
        let f = findings("crates/core/src/generation/x.rs", src);
        let rules: Vec<_> = f.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec![DETERMINISM; 4], "{f:#?}");
        assert!(f.iter().any(|x| x.message.contains("Instant::now")));
        assert!(f.iter().any(|x| x.message.contains("for … in m")));
        assert!(f
            .iter()
            .any(|x| x.message.contains("`s`") || x.message.contains("hash container `s`")));
    }

    #[test]
    fn determinism_ignores_sorted_vec_iteration_and_seeded_rng() {
        let src = "fn f() {\n  let v: Vec<u32> = Vec::new();\n  for x in &v {}\n  let mut rng = StdRng::seed_from_u64(42);\n}\n";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn capped_decode_distinguishes_clamped_from_raw() {
        let flagged = "fn d(n: usize, len: usize) {\n  let mut v = Vec::with_capacity(n);\n  let b = vec![0u8; len];\n}\n";
        let f = findings("crates/taxonomy/src/persist.rs", flagged);
        assert_eq!(f.len(), 2, "{f:#?}");
        let ok = "fn d(n: usize, buf: &B) {\n  let mut v = Vec::with_capacity(n.min(buf.remaining() / 4));\n  let mut w = BytesMut::with_capacity(1 << 16);\n  let c = Vec::with_capacity(MAX_HEADERS);\n  let list = vec![1, 2, 3];\n}\n";
        assert!(findings("crates/taxonomy/src/persist.rs", ok).is_empty());
    }

    #[test]
    fn capped_decode_only_governs_decode_files() {
        let src = "fn f(n: usize) { let v = Vec::with_capacity(n); }";
        assert!(findings("crates/serve/src/exec.rs", src).is_empty());
        assert_eq!(findings("crates/serve/src/json.rs", src).len(), 1);
        // ISSUE 8: the v3 view and varint readers are decode paths too.
        assert_eq!(findings("crates/taxonomy/src/view.rs", src).len(), 1);
        assert_eq!(findings("crates/taxonomy/src/varint.rs", src).len(), 1);
    }

    #[test]
    fn varint_decoded_counts_are_called_out_by_name() {
        let flagged = "fn d(buf: &mut &[u8]) -> Result<(), E> {\n  let rows = read_varint(buf, \"rows\")? as usize;\n  let mut v = Vec::with_capacity(rows);\n  let bits = vec![0u8; rows];\n  Ok(())\n}\n";
        let f = findings("crates/taxonomy/src/view.rs", flagged);
        assert_eq!(f.len(), 2, "{f:#?}");
        assert!(
            f[0].message.contains("varint-decoded count `rows`"),
            "{f:#?}"
        );
        assert!(
            f[1].message.contains("varint-decoded count `rows`"),
            "{f:#?}"
        );
        // Tuple patterns bind every name: `varint_at` results count too.
        let tuple = "fn d(buf: &[u8]) {\n  let (n, next) = varint_at(buf, 0).unwrap_or((0, 0));\n  let v = Vec::with_capacity(n as usize);\n}\n";
        let f = findings("crates/taxonomy/src/persist.rs", tuple);
        assert!(
            f.iter()
                .any(|x| x.message.contains("varint-decoded count `n`")),
            "{f:#?}"
        );
    }

    #[test]
    fn capped_varint_counts_are_clean() {
        let ok = "fn d(buf: &mut &[u8]) -> Result<(), E> {\n  let rows = read_varint(buf, \"rows\")? as usize;\n  let mut v = Vec::with_capacity(rows.min(buf.remaining()));\n  Ok(())\n}\n";
        assert!(findings("crates/taxonomy/src/view.rs", ok).is_empty());
    }

    #[test]
    fn delta_ops_are_write_path_only() {
        let src = "fn f(ov: &DeltaOverlay) {\n  for op in ov.log_ops() {\n    if let DeltaOp::Entity { .. } = op {}\n  }\n}\n";
        let f = findings("crates/serve/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:#?}");
        assert!(f.iter().all(|x| x.rule == OVERLAY_READ_THROUGH), "{f:#?}");
        assert!(f[0].message.contains("log_ops"), "{f:#?}");
        assert!(f[1].message.contains("DeltaOp"), "{f:#?}");
    }

    #[test]
    fn the_overlay_write_path_itself_is_sanctioned() {
        let src = "fn f(ov: &DeltaOverlay) {\n  for op in ov.log_ops() {\n    if let DeltaOp::Entity { .. } = op {}\n  }\n}\n";
        for rel in [
            "crates/taxonomy/src/overlay.rs",
            "crates/taxonomy/src/compact.rs",
            "crates/taxonomy/src/persist.rs",
        ] {
            assert!(findings(rel, src).is_empty(), "{rel} is sanctioned");
        }
        // Reading through the merged view is fine anywhere.
        let ok = "fn g(view: &dyn TaxonomyRead) -> usize { view.men2ent(\"m\").len() }";
        assert!(findings("crates/serve/src/x.rs", ok).is_empty());
    }

    #[test]
    fn tag_crate_is_serving_path_and_deterministic_scope() {
        // ISSUE 10: cnp_tag executes inside serving workers and its
        // output is part of the byte-identical contract — both rules
        // govern it.
        let f = findings(
            "crates/tag/src/score.rs",
            "fn f() {\n  v.unwrap();\n  let t = Instant::now();\n}\n",
        );
        let rules: Vec<_> = f.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec![NO_PANIC, DETERMINISM], "{f:#?}");
        let hash =
            "fn g() {\n  let mut m = FxHashMap::default();\n  for (k, v) in &m { emit(k); }\n}\n";
        let f = findings("crates/tag/src/index.rs", hash);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, DETERMINISM);
    }

    #[test]
    fn lex_error_is_a_finding_not_a_crash() {
        let f = findings("crates/serve/src/x.rs", "fn f() { \"unterminated }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, LEX_ERROR);
    }

    #[test]
    fn findings_come_out_sorted() {
        let src = "fn f() {\n  b.unwrap();\n  a.expect(\"x\");\n}\n";
        let f = findings("crates/serve/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }
}
