//! Diagnostics: the [`Finding`] type and its text / JSON renderings.

use std::fmt;

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The rule name (kebab-case, as listed by `--list-rules`).
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix (or legitimately suppress) it.
    pub suggestion: &'static str,
}

impl Finding {
    /// Builds a finding.
    pub fn new(
        file: &str,
        line: u32,
        col: u32,
        rule: &'static str,
        message: String,
        suggestion: &'static str,
    ) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col,
            rule,
            message,
            suggestion,
        }
    }

    /// The stable sort key diagnostics are emitted in.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.file.clone(), self.line, self.col, self.rule)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} · {} · {} — {}",
            self.file, self.line, self.col, self.rule, self.message, self.suggestion
        )
    }
}

/// Renders findings as a deterministic JSON document (sorted by file,
/// line, column, rule), shaped for machine consumption in CI:
/// `{"findings":[{"file":…,"line":…,"col":…,"rule":…,"message":…,
/// "suggestion":…}],"total":N}`.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"file\":");
        json_str(&f.file, &mut out);
        out.push_str(&format!(",\"line\":{},\"col\":{},\"rule\":", f.line, f.col));
        json_str(f.rule, &mut out);
        out.push_str(",\"message\":");
        json_str(&f.message, &mut out);
        out.push_str(",\"suggestion\":");
        json_str(f.suggestion, &mut out);
        out.push('}');
    }
    out.push_str(&format!("],\"total\":{}}}", findings.len()));
    out
}

fn json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_the_documented_shape() {
        let f = Finding::new(
            "crates/serve/src/json.rs",
            449,
            13,
            "no-panic-serving-path",
            "`.expect(…)` on the serving path".to_string(),
            "return a typed error instead",
        );
        let text = f.to_string();
        assert!(text.starts_with("crates/serve/src/json.rs:449:13 · no-panic-serving-path · "));
        assert!(text.contains("— return a typed error"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let f = Finding::new(
            "a.rs",
            1,
            2,
            "capped-decode",
            "has \"quotes\"".to_string(),
            "s",
        );
        let doc = to_json(&[f]);
        assert!(doc.contains("\\\"quotes\\\""));
        assert!(doc.ends_with("\"total\":1}"));
        assert_eq!(to_json(&[]), "{\"findings\":[],\"total\":0}");
    }
}
