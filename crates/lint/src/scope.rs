//! Test-region detection over the token stream.
//!
//! The no-panic and concurrency rules apply to *non-test* code only:
//! tests assert with `unwrap` and spawn threads freely. This module finds
//! every `#[test]` / `#[cfg(test)]`-guarded item (functions, `mod tests {…}`
//! blocks, impls) by brace matching on the lexed token stream and returns
//! the line ranges they span, so rules can skip findings inside them.

use crate::lexer::{Tok, TokKind};

/// Inclusive line ranges that belong to test-gated items.
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(u32, u32)>,
}

impl TestRegions {
    /// Whether `line` falls inside any test-gated item.
    pub fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// The detected ranges (for tests and debugging).
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }
}

/// Scans the token stream for test-gated items.
pub fn find_test_regions(toks: &[Tok]) -> TestRegions {
    let mut regions = TestRegions::default();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_start = toks[i].line;
            let Some(close) = matching(toks, i + 1, '[', ']') else {
                break; // malformed attribute; nothing more to find
            };
            if attr_is_test(&toks[i + 2..close]) {
                // Skip any further attributes stacked on the same item.
                let mut j = close + 1;
                while j < toks.len()
                    && toks[j].is_punct('#')
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching(toks, j + 1, '[', ']') {
                        Some(c) => j = c + 1,
                        None => return regions,
                    }
                }
                let end = item_end(toks, j);
                regions.ranges.push((attr_start, end));
                i = j;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Whether the tokens inside `#[…]` gate a test: the attribute is `test`
/// itself (incl. path-qualified variants ending in `test`), or any `cfg`
/// whose predicate mentions `test`.
fn attr_is_test(inner: &[Tok]) -> bool {
    let Some(first) = inner.first() else {
        return false;
    };
    if first.is_ident("cfg") || first.is_ident("cfg_attr") {
        return inner
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test");
    }
    // `#[test]`, `#[tokio::test]`, `#[test_case(…)]`…
    let mut last_ident = None;
    for t in inner {
        if t.is_punct('(') {
            break;
        }
        if t.kind == TokKind::Ident {
            last_ident = Some(t.text.as_str());
        }
    }
    matches!(last_ident, Some(name) if name == "test" || name.starts_with("test_"))
}

/// Index of the token closing the group opened at `open_idx` (which must
/// hold the `open` punct), or `None` when unbalanced.
fn matching(toks: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// The last line of the item starting at `start`: scans to the first
/// top-level `;` (item without a body, e.g. `use` under `cfg(test)`) or
/// the close of the first top-level `{…}` block (fn / mod / impl body).
fn item_end(toks: &[Tok], start: usize) -> u32 {
    let mut i = start;
    let mut angle = 0i32; // generics can contain neither `;` nor `{…}` we care about, but track anyway
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if t.is_punct(';') && angle == 0 {
            return t.line;
        } else if t.is_punct('{') {
            match matching(toks, i, '{', '}') {
                Some(close) => return toks[close].line,
                None => break,
            }
        }
        i += 1;
    }
    toks.last().map_or(0, |t| t.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions(src: &str) -> TestRegions {
        find_test_regions(&lex(src).expect("lex").toks)
    }

    #[test]
    fn cfg_test_mod_is_one_region() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn also_live() {}\n";
        let r = regions(src);
        assert!(!r.contains(1));
        assert!(r.contains(2));
        assert!(r.contains(5));
        assert!(r.contains(6));
        assert!(!r.contains(7));
    }

    #[test]
    fn test_fn_with_stacked_attributes() {
        let src = "#[test]\n#[ignore]\nfn t() {\n  body();\n}\nfn live() {}\n";
        let r = regions(src);
        assert!(r.contains(1));
        assert!(r.contains(4));
        assert!(!r.contains(6));
    }

    #[test]
    fn non_test_attributes_do_not_gate() {
        let src = "#[derive(Debug)]\nstruct S { x: u32 }\n#[inline]\nfn f() {}\n";
        let r = regions(src);
        assert_eq!(r.ranges(), &[] as &[(u32, u32)]);
    }

    #[test]
    fn cfg_any_test_counts_and_bodyless_items_end_at_semicolon() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nuse std::thread;\nfn live() {}\n";
        let r = regions(src);
        assert!(r.contains(2));
        assert!(!r.contains(3));
    }

    #[test]
    fn braces_inside_strings_do_not_confuse_matching() {
        let src = "#[test]\nfn t() { let s = \"}}}\"; inner(); }\nfn live() {}\n";
        let r = regions(src);
        assert!(r.contains(2));
        assert!(!r.contains(3));
    }
}
