#![forbid(unsafe_code)]
//! The `cnp_lint` CLI: scan the workspace, print diagnostics, exit
//! non-zero on any finding. See `--help`.

use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
cnp_lint — repo-invariant static analysis for the CN-Probase workspace

USAGE:
    cnp_lint [--root <dir>] [--format text|json] [--list-rules]

OPTIONS:
    --root <dir>     Workspace root to scan (default: auto-detected by
                     walking up from the current directory to the first
                     directory containing both Cargo.toml and crates/)
    --format <fmt>   Diagnostic format: text (default) or json
    --list-rules     Print every rule, its scope, and the compiled-in
                     allowlist, then exit
    -h, --help       This text

EXIT CODE:
    0  no findings — every codified invariant holds
    1  findings printed
    2  usage or I/O error

Suppressions: `// cnp-lint: allow(<rule>) reason=\"…\"` on (or directly
above) the offending line; `allow-file(<rule>)` in the first 20 lines for
a whole file. The reason is mandatory; stale or malformed annotations are
themselves findings.";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("text");
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = "text".into(),
                Some("json") => format = "json".into(),
                _ => return usage("--format must be text or json"),
            },
            "--list-rules" => list_rules = true,
            "-h" | "--help" => {
                println!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if list_rules {
        for rule in cnp_lint::RULES {
            println!(
                "{}\n    invariant: {}\n    scope:     {}",
                rule.name, rule.summary, rule.scope
            );
        }
        println!("\ncompiled-in allowlist:");
        for (file, rule, reason) in cnp_lint::BUILTIN_ALLOWS {
            println!("    {file} · {rule}\n        {reason}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(find_root) {
        Some(root) => root,
        None => return usage("could not auto-detect the workspace root; pass --root"),
    };
    let findings = match cnp_lint::lint_root(&root) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("cnp_lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        println!("{}", cnp_lint::to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            eprintln!("cnp_lint: clean — every codified invariant holds");
        } else {
            eprintln!("cnp_lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the first directory that looks
/// like the workspace root (has both `Cargo.toml` and `crates/`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("cnp_lint: {message}\n\n{HELP}");
    ExitCode::from(2)
}
