#![forbid(unsafe_code)]
//! `cnp_lint` — repo-invariant static analysis for the CN-Probase
//! workspace.
//!
//! Six PRs established contracts that ordinary tests cannot keep holding
//! by themselves: the serving path never panics (PR 2/5/6), `cnp_runtime`
//! owns all concurrency and the pipeline is thread-count-deterministic
//! (PR 3), and every decoder caps allocations by remaining input (PR 4/6).
//! This crate turns those contracts into named, machine-checked rules —
//! a dependency-free Rust token scanner (no `syn`, nothing vendored, same
//! discipline as the hand-rolled HTTP and JSON layers) that runs over all
//! first-party `src/` trees and fails CI on any violation.
//!
//! The rules, their scopes and the suppression grammar are documented in
//! [`rules`] and the README's "Static analysis & invariants" section. Run
//! it locally with:
//!
//! ```text
//! cargo run -p cnp_lint            # text diagnostics, exit 1 on findings
//! cargo run -p cnp_lint -- --format json
//! cargo run -p cnp_lint -- --list-rules
//! ```

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scope;

pub use diag::{to_json, Finding};
pub use rules::{check_file, RuleInfo, BUILTIN_ALLOWS, RULES};

use std::io;
use std::path::{Path, PathBuf};

/// The first-party source roots the scan covers, relative to the
/// workspace root. `vendor/` (third-party drop-ins), `target/`, tests,
/// benches and examples are deliberately outside: the invariants govern
/// shipped library and binary code.
pub const SCAN_ROOTS: &[&str] = &["src", "crates"];

/// Whether `rel` (forward-slash workspace-relative path) is part of the
/// scanned first-party surface.
fn scanned(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    // Root facade sources.
    if let Some(rest) = rel.strip_prefix("src/") {
        return !rest.is_empty();
    }
    // Crate sources: crates/<name>/src/**  (not tests/, benches/, …).
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((_, tail)) = rest.split_once('/') {
            return tail.starts_with("src/");
        }
    }
    false
}

/// Recursively collects every scanned `.rs` file under `root`, sorted for
/// deterministic output.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut rels: Vec<PathBuf> = files
        .into_iter()
        .filter(|p| {
            p.strip_prefix(root)
                .ok()
                .and_then(Path::to_str)
                .is_some_and(|rel| scanned(&rel.replace('\\', "/")))
        })
        .collect();
    rels.sort();
    Ok(rels)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`. Returns sorted findings;
/// an empty vector means the repo upholds every codified invariant.
pub fn lint_root(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        findings.extend(check_file(&rel, &src));
    }
    findings.sort_by_key(Finding::sort_key);
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_surface_is_src_trees_only() {
        assert!(scanned("src/lib.rs"));
        assert!(scanned("crates/serve/src/json.rs"));
        assert!(scanned("crates/server/src/bin/cnp_server.rs"));
        assert!(!scanned("crates/serve/tests/serve_equivalence.rs"));
        assert!(!scanned("crates/bench/benches/frozen_api.rs"));
        assert!(!scanned("vendor/rand/src/lib.rs"));
        assert!(!scanned("examples/serve_http.rs"));
        assert!(!scanned("crates/lint/tests/fixtures/bad/unwrap.rs"));
        assert!(!scanned("crates/serve/src/notes.md"));
    }
}
