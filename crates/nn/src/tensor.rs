//! Dense row-major matrices (f32). Vectors are `n × 1` matrices.
//!
//! The CopyNet model is small (hidden ≈ 48), so simple loops beat the
//! complexity of a BLAS dependency; everything stays allocation-explicit.

use rand::rngs::StdRng;
use rand::Rng;

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Column vector of zeros.
    pub fn zero_vec(n: usize) -> Self {
        Self::zeros(n, 1)
    }

    /// Xavier/Glorot-uniform initialisation.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product `self @ x` (x must be `cols × 1`).
    pub fn matvec(&self, x: &Matrix) -> Matrix {
        assert_eq!(self.cols, x.rows, "matvec shape mismatch");
        assert_eq!(x.cols, 1, "matvec expects a column vector");
        let mut out = Matrix::zero_vec(self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(&x.data) {
                acc += a * b;
            }
            out.data[r] = acc;
        }
        out
    }

    /// Is this a column vector?
    pub fn is_vec(&self) -> bool {
        self.cols == 1
    }

    /// Length of a column vector.
    pub fn len_vec(&self) -> usize {
        debug_assert!(self.is_vec());
        self.rows
    }

    /// Dot product of two column vectors.
    pub fn dot(&self, other: &Matrix) -> f32 {
        assert!(self.is_vec() && other.is_vec());
        assert_eq!(self.rows, other.rows);
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// In-place `self += other * scale`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Fills with zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// Numerically-stable softmax over a slice.
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum.max(1e-30)).collect()
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32); // [[0,1,2],[3,4,5]]
        let x = Matrix::from_fn(3, 1, |r, _| (r + 1) as f32); // [1,2,3]
        let y = m.matvec(&x);
        assert_eq!(y.data, vec![0.0 + 2.0 + 6.0, 3.0 + 8.0 + 15.0]);
    }

    #[test]
    #[should_panic(expected = "matvec shape mismatch")]
    fn matvec_shape_checked() {
        let m = Matrix::zeros(2, 3);
        let x = Matrix::zero_vec(2);
        let _ = m.matvec(&x);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 1000.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-6);
        let q = softmax(&[-1e30, 0.0]);
        assert!(q[1] > 0.99);
    }

    #[test]
    fn sigmoid_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(10, 10, &mut rng);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(m.data.iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_fn(2, 2, |_, _| 1.0);
        a.add_scaled(&b, 0.5);
        a.add_scaled(&b, 0.5);
        assert!(a.data.iter().all(|&v| (v - 1.0).abs() < 1e-7));
    }

    #[test]
    fn dot_product() {
        let a = Matrix::from_fn(3, 1, |r, _| r as f32);
        let b = Matrix::from_fn(3, 1, |_, _| 2.0);
        assert_eq!(a.dot(&b), 6.0);
    }
}
