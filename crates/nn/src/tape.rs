//! Reverse-mode autodiff over a linear tape.
//!
//! Every forward op appends a node holding its value and the recipe to
//! back-propagate into its parents (tape nodes) and parameters. The op set
//! is exactly what the CopyNet encoder-decoder needs, including a fused
//! generate/copy mixture negative-log-likelihood ([`Tape::copy_nll`]) whose
//! gradient is derived in its implementation comments.

use crate::params::{ParamId, Params};
use crate::tensor::{sigmoid, softmax, Matrix};

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(pub usize);

#[derive(Debug, Clone)]
enum Op {
    Input,
    EmbedRow {
        p: ParamId,
        row: usize,
    },
    MatVecP {
        p: ParamId,
        x: NodeId,
    },
    AddBias {
        p: ParamId,
        x: NodeId,
    },
    AddVV {
        a: NodeId,
        b: NodeId,
    },
    Hadamard {
        a: NodeId,
        b: NodeId,
    },
    Lerp {
        z: NodeId,
        a: NodeId,
        b: NodeId,
    },
    TanhV {
        x: NodeId,
    },
    SigmoidV {
        x: NodeId,
    },
    StackDot {
        hs: Vec<NodeId>,
        s: NodeId,
    },
    SoftmaxV {
        x: NodeId,
    },
    WeightedSum {
        hs: Vec<NodeId>,
        alpha: NodeId,
    },
    Concat2 {
        a: NodeId,
        b: NodeId,
    },
    CopyNll {
        logits: NodeId,
        alpha: NodeId,
        gate: NodeId,
        target: usize,
        copy_mask: Vec<bool>,
    },
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    grad: Matrix,
    op: Op,
}

/// The autodiff tape.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Fresh tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the tape empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node value.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Node gradient (after [`Tape::backward`]).
    pub fn grad(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].grad
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        let grad = Matrix::zeros(value.rows, value.cols);
        self.nodes.push(Node { value, grad, op });
        NodeId(self.nodes.len() - 1)
    }

    /// Leaf input (no gradient consumers).
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Embedding lookup: row `row` of `p`, as a column vector.
    pub fn embed(&mut self, params: &Params, p: ParamId, row: usize) -> NodeId {
        let mat = params.get(p);
        let value = Matrix::from_fn(mat.cols, 1, |r, _| mat.get(row, r));
        self.push(value, Op::EmbedRow { p, row })
    }

    /// `W @ x` with parameter `W`.
    pub fn matvec(&mut self, params: &Params, p: ParamId, x: NodeId) -> NodeId {
        let value = params.get(p).matvec(self.value(x));
        self.push(value, Op::MatVecP { p, x })
    }

    /// `x + b` with bias parameter `b` (column vector).
    pub fn add_bias(&mut self, params: &Params, p: ParamId, x: NodeId) -> NodeId {
        let b = params.get(p);
        let xv = self.value(x);
        assert_eq!(b.rows, xv.rows);
        let value = Matrix::from_fn(xv.rows, 1, |r, _| xv.get(r, 0) + b.get(r, 0));
        self.push(value, Op::AddBias { p, x })
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.rows, vb.rows);
        let value = Matrix::from_fn(va.rows, 1, |r, _| va.get(r, 0) + vb.get(r, 0));
        self.push(value, Op::AddVV { a, b })
    }

    /// Elementwise `a ⊙ b`.
    pub fn hadamard(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.rows, vb.rows);
        let value = Matrix::from_fn(va.rows, 1, |r, _| va.get(r, 0) * vb.get(r, 0));
        self.push(value, Op::Hadamard { a, b })
    }

    /// Gated interpolation `z ⊙ a + (1 − z) ⊙ b` — the GRU update step.
    pub fn lerp(&mut self, z: NodeId, a: NodeId, b: NodeId) -> NodeId {
        let (vz, va, vb) = (self.value(z), self.value(a), self.value(b));
        assert_eq!(vz.rows, va.rows);
        assert_eq!(va.rows, vb.rows);
        let value = Matrix::from_fn(va.rows, 1, |r, _| {
            let z = vz.get(r, 0);
            z * va.get(r, 0) + (1.0 - z) * vb.get(r, 0)
        });
        self.push(value, Op::Lerp { z, a, b })
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x);
        let value = Matrix::from_fn(v.rows, 1, |r, _| v.get(r, 0).tanh());
        self.push(value, Op::TanhV { x })
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x);
        let value = Matrix::from_fn(v.rows, 1, |r, _| sigmoid(v.get(r, 0)));
        self.push(value, Op::SigmoidV { x })
    }

    /// Attention scores: `scores[i] = h_i · s` over encoder states `hs`.
    pub fn stack_dot(&mut self, hs: &[NodeId], s: NodeId) -> NodeId {
        let sv = self.value(s).clone();
        let value = Matrix::from_fn(hs.len(), 1, |i, _| self.value(hs[i]).dot(&sv));
        self.push(value, Op::StackDot { hs: hs.to_vec(), s })
    }

    /// Softmax over a column vector.
    pub fn softmax_v(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x);
        let p = softmax(&v.data);
        let value = Matrix {
            rows: v.rows,
            cols: 1,
            data: p,
        };
        self.push(value, Op::SoftmaxV { x })
    }

    /// Attention context: `Σ α_i · h_i`.
    pub fn weighted_sum(&mut self, hs: &[NodeId], alpha: NodeId) -> NodeId {
        assert_eq!(self.value(alpha).rows, hs.len());
        let dim = self.value(hs[0]).rows;
        let mut value = Matrix::zero_vec(dim);
        for (i, &h) in hs.iter().enumerate() {
            let a = self.value(alpha).get(i, 0);
            value.add_scaled(self.value(h), a);
        }
        self.push(
            value,
            Op::WeightedSum {
                hs: hs.to_vec(),
                alpha,
            },
        )
    }

    /// Vertical concatenation `[a; b]`.
    pub fn concat2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (self.value(a), self.value(b));
        let mut data = va.data.clone();
        data.extend_from_slice(&vb.data);
        let value = Matrix {
            rows: va.rows + vb.rows,
            cols: 1,
            data,
        };
        self.push(value, Op::Concat2 { a, b })
    }

    /// Fused CopyNet step loss:
    ///
    /// ```text
    /// p_gen = softmax(logits)        g = sigmoid(gate)
    /// C     = Σ_{i : copy_mask[i]} alpha_i
    /// P     = (1 − g) · p_gen[target] + g · C
    /// loss  = − ln P
    /// ```
    ///
    /// `alpha` must already be a probability vector (softmaxed attention).
    pub fn copy_nll(
        &mut self,
        logits: NodeId,
        alpha: NodeId,
        gate: NodeId,
        target: usize,
        copy_mask: Vec<bool>,
    ) -> NodeId {
        assert_eq!(copy_mask.len(), self.value(alpha).rows);
        assert!(target < self.value(logits).rows);
        let p_gen = softmax(&self.value(logits).data);
        let g = sigmoid(self.value(gate).get(0, 0));
        let c: f32 = self
            .value(alpha)
            .data
            .iter()
            .zip(&copy_mask)
            .filter(|(_, &m)| m)
            .map(|(a, _)| a)
            .sum();
        let p = ((1.0 - g) * p_gen[target] + g * c).max(1e-12);
        let value = Matrix {
            rows: 1,
            cols: 1,
            data: vec![-p.ln()],
        };
        self.push(
            value,
            Op::CopyNll {
                logits,
                alpha,
                gate,
                target,
                copy_mask,
            },
        )
    }

    /// Sums scalar losses.
    pub fn sum_scalars(&mut self, xs: &[NodeId]) -> NodeId {
        assert!(!xs.is_empty());
        let total: f32 = xs.iter().map(|&x| self.value(x).get(0, 0)).sum();
        // Reuse AddVV chains for gradient correctness: build a fold.
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = self.add(acc, x);
        }
        debug_assert!((self.value(acc).get(0, 0) - total).abs() < 1e-3);
        acc
    }

    /// Runs reverse-mode accumulation from `loss` (must be 1×1). Parameter
    /// gradients accumulate into `params`; node gradients are kept on the
    /// tape (for tests).
    pub fn backward(&mut self, loss: NodeId, params: &mut Params) {
        assert_eq!(self.value(loss).rows, 1);
        self.nodes[loss.0].grad.data[0] = 1.0;
        for i in (0..=loss.0).rev() {
            let grad = self.nodes[i].grad.clone();
            if grad.data.iter().all(|&g| g == 0.0) {
                continue;
            }
            let op = self.nodes[i].op.clone();
            match op {
                Op::Input => {}
                Op::EmbedRow { p, row } => {
                    let pg = params.grad_mut(p);
                    for (c, &g) in grad.data.iter().enumerate() {
                        let idx = row * pg.cols + c;
                        pg.data[idx] += g;
                    }
                }
                Op::MatVecP { p, x } => {
                    // y = W x:  dW += g xᵀ,  dx += Wᵀ g.
                    let xv = self.nodes[x.0].value.clone();
                    {
                        let pg = params.grad_mut(p);
                        for r in 0..pg.rows {
                            let gr = grad.data[r];
                            if gr != 0.0 {
                                for c in 0..pg.cols {
                                    pg.data[r * pg.cols + c] += gr * xv.data[c];
                                }
                            }
                        }
                    }
                    let w = params.get(p);
                    let xg = &mut self.nodes[x.0].grad;
                    for c in 0..w.cols {
                        let mut acc = 0.0;
                        for r in 0..w.rows {
                            acc += w.data[r * w.cols + c] * grad.data[r];
                        }
                        xg.data[c] += acc;
                    }
                }
                Op::AddBias { p, x } => {
                    params.grad_mut(p).add_scaled(&grad, 1.0);
                    self.nodes[x.0].grad.add_scaled(&grad, 1.0);
                }
                Op::AddVV { a, b } => {
                    self.nodes[a.0].grad.add_scaled(&grad, 1.0);
                    self.nodes[b.0].grad.add_scaled(&grad, 1.0);
                }
                Op::Hadamard { a, b } => {
                    let va = self.nodes[a.0].value.clone();
                    let vb = self.nodes[b.0].value.clone();
                    for r in 0..grad.rows {
                        self.nodes[a.0].grad.data[r] += grad.data[r] * vb.data[r];
                        self.nodes[b.0].grad.data[r] += grad.data[r] * va.data[r];
                    }
                }
                Op::Lerp { z, a, b } => {
                    let vz = self.nodes[z.0].value.clone();
                    let va = self.nodes[a.0].value.clone();
                    let vb = self.nodes[b.0].value.clone();
                    for r in 0..grad.rows {
                        let g = grad.data[r];
                        self.nodes[z.0].grad.data[r] += g * (va.data[r] - vb.data[r]);
                        self.nodes[a.0].grad.data[r] += g * vz.data[r];
                        self.nodes[b.0].grad.data[r] += g * (1.0 - vz.data[r]);
                    }
                }
                Op::TanhV { x } => {
                    let y = self.nodes[i].value.clone();
                    for r in 0..grad.rows {
                        self.nodes[x.0].grad.data[r] +=
                            grad.data[r] * (1.0 - y.data[r] * y.data[r]);
                    }
                }
                Op::SigmoidV { x } => {
                    let y = self.nodes[i].value.clone();
                    for r in 0..grad.rows {
                        self.nodes[x.0].grad.data[r] +=
                            grad.data[r] * y.data[r] * (1.0 - y.data[r]);
                    }
                }
                Op::StackDot { hs, s } => {
                    // scores[i] = h_i · s.
                    let sv = self.nodes[s.0].value.clone();
                    for (idx, &h) in hs.iter().enumerate() {
                        let g = grad.data[idx];
                        if g != 0.0 {
                            let hv = self.nodes[h.0].value.clone();
                            self.nodes[h.0].grad.add_scaled(&sv, g);
                            self.nodes[s.0].grad.add_scaled(&hv, g);
                        }
                    }
                }
                Op::SoftmaxV { x } => {
                    // dx = y ⊙ (g − (g · y)).
                    let y = self.nodes[i].value.clone();
                    let gy: f32 = grad.data.iter().zip(&y.data).map(|(g, y)| g * y).sum();
                    for r in 0..grad.rows {
                        self.nodes[x.0].grad.data[r] += y.data[r] * (grad.data[r] - gy);
                    }
                }
                Op::WeightedSum { hs, alpha } => {
                    // c = Σ α_i h_i:  dα_i += g·h_i,  dh_i += α_i g.
                    let alpha_v = self.nodes[alpha.0].value.clone();
                    for (idx, &h) in hs.iter().enumerate() {
                        let hv = self.nodes[h.0].value.clone();
                        let dot: f32 = grad.data.iter().zip(&hv.data).map(|(g, h)| g * h).sum();
                        self.nodes[alpha.0].grad.data[idx] += dot;
                        self.nodes[h.0].grad.add_scaled(&grad, alpha_v.data[idx]);
                    }
                }
                Op::Concat2 { a, b } => {
                    let na = self.nodes[a.0].value.rows;
                    for r in 0..na {
                        self.nodes[a.0].grad.data[r] += grad.data[r];
                    }
                    let nb = self.nodes[b.0].value.rows;
                    for r in 0..nb {
                        self.nodes[b.0].grad.data[r] += grad.data[na + r];
                    }
                }
                Op::CopyNll {
                    logits,
                    alpha,
                    gate,
                    target,
                    copy_mask,
                } => {
                    let upstream = grad.data[0];
                    let p_gen = softmax(&self.nodes[logits.0].value.data);
                    let g = sigmoid(self.nodes[gate.0].value.data[0]);
                    let alpha_v = self.nodes[alpha.0].value.clone();
                    let c: f32 = alpha_v
                        .data
                        .iter()
                        .zip(&copy_mask)
                        .filter(|(_, &m)| m)
                        .map(|(a, _)| a)
                        .sum();
                    let p = ((1.0 - g) * p_gen[target] + g * c).max(1e-12);
                    let dldp = -upstream / p;
                    // dP/dlogits_j = (1−g)·p_gen[target]·(δ_{j=target} − p_gen[j]).
                    for j in 0..p_gen.len() {
                        let delta = if j == target { 1.0 } else { 0.0 };
                        self.nodes[logits.0].grad.data[j] +=
                            dldp * (1.0 - g) * p_gen[target] * (delta - p_gen[j]);
                    }
                    // dP/dα_i = g for matching positions.
                    for (idx, &m) in copy_mask.iter().enumerate() {
                        if m {
                            self.nodes[alpha.0].grad.data[idx] += dldp * g;
                        }
                    }
                    // dP/draw = (C − p_gen[target]) · g(1−g).
                    self.nodes[gate.0].grad.data[0] += dldp * (c - p_gen[target]) * g * (1.0 - g);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference check of the full op set in one composite graph.
    #[test]
    fn gradient_check_composite_graph() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut params = Params::new();
        let emb = params.add_xavier(5, 4, &mut rng); // vocab 5, dim 4
        let w = params.add_xavier(4, 4, &mut rng);
        let b = params.add_zeros(4, 1);
        let wo = params.add_xavier(5, 8, &mut rng); // logits over vocab 5
        let wg = params.add_xavier(1, 8, &mut rng);

        let loss_of = |params: &Params| -> f32 {
            let mut tape = Tape::new();
            let x0 = tape.embed(params, emb, 1);
            let x1 = tape.embed(params, emb, 3);
            let h0 = tape.matvec(params, w, x0);
            let h0 = tape.add_bias(params, b, h0);
            let h0 = tape.tanh(h0);
            let h1 = tape.matvec(params, w, x1);
            let h1 = tape.sigmoid(h1);
            let mix = tape.lerp(h1, h0, x1);
            let had = tape.hadamard(mix, h0);
            let s = tape.add(had, x0);
            let scores = tape.stack_dot(&[h0, h1], s);
            let alpha = tape.softmax_v(scores);
            let ctx = tape.weighted_sum(&[h0, h1], alpha);
            let cat = tape.concat2(s, ctx);
            let logits = tape.matvec(params, wo, cat);
            let gate = tape.matvec(params, wg, cat);
            let loss = tape.copy_nll(logits, alpha, gate, 2, vec![true, false]);
            tape.value(loss).get(0, 0)
        };

        // Analytic gradients.
        let mut tape = Tape::new();
        let x0 = tape.embed(&params, emb, 1);
        let x1 = tape.embed(&params, emb, 3);
        let h0 = tape.matvec(&params, w, x0);
        let h0 = tape.add_bias(&params, b, h0);
        let h0 = tape.tanh(h0);
        let h1 = tape.matvec(&params, w, x1);
        let h1 = tape.sigmoid(h1);
        let mix = tape.lerp(h1, h0, x1);
        let had = tape.hadamard(mix, h0);
        let s = tape.add(had, x0);
        let scores = tape.stack_dot(&[h0, h1], s);
        let alpha = tape.softmax_v(scores);
        let ctx = tape.weighted_sum(&[h0, h1], alpha);
        let cat = tape.concat2(s, ctx);
        let logits = tape.matvec(&params, wo, cat);
        let gate = tape.matvec(&params, wg, cat);
        let loss = tape.copy_nll(logits, alpha, gate, 2, vec![true, false]);
        params.zero_grads();
        tape.backward(loss, &mut params);

        // Compare against central differences on a sample of coordinates.
        let eps = 1e-3f32;
        for pid in [emb, w, b, wo, wg] {
            let n = params.get(pid).data.len();
            for idx in (0..n).step_by(3) {
                let orig = params.get(pid).data[idx];
                params.get_mut(pid).data[idx] = orig + eps;
                let up = loss_of(&params);
                params.get_mut(pid).data[idx] = orig - eps;
                let down = loss_of(&params);
                params.get_mut(pid).data[idx] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = params.grad(pid).data[idx];
                assert!(
                    (numeric - analytic).abs() < 2e-2 + 0.05 * numeric.abs().max(analytic.abs()),
                    "param {:?} idx {idx}: numeric {numeric} vs analytic {analytic}",
                    pid
                );
            }
        }
    }

    #[test]
    fn backward_seeds_loss_gradient() {
        let mut params = Params::new();
        let mut tape = Tape::new();
        let a = tape.input(Matrix {
            rows: 1,
            cols: 1,
            data: vec![2.0],
        });
        let b = tape.input(Matrix {
            rows: 1,
            cols: 1,
            data: vec![3.0],
        });
        let c = tape.hadamard(a, b);
        tape.backward(c, &mut params);
        assert_eq!(tape.grad(a).data[0], 3.0);
        assert_eq!(tape.grad(b).data[0], 2.0);
    }

    #[test]
    fn sum_scalars_distributes_gradient() {
        let mut params = Params::new();
        let mut tape = Tape::new();
        let xs: Vec<NodeId> = (0..3)
            .map(|i| {
                tape.input(Matrix {
                    rows: 1,
                    cols: 1,
                    data: vec![i as f32],
                })
            })
            .collect();
        let total = tape.sum_scalars(&xs);
        assert_eq!(tape.value(total).data[0], 3.0);
        tape.backward(total, &mut params);
        for &x in &xs {
            assert_eq!(tape.grad(x).data[0], 1.0);
        }
    }

    #[test]
    fn copy_nll_prefers_copy_when_gate_open() {
        // With the gate strongly open and the target covered by the mask,
        // the loss must be small even if the vocab softmax is wrong.
        let mut tape = Tape::new();
        let logits = tape.input(Matrix {
            rows: 3,
            cols: 1,
            data: vec![10.0, 0.0, 0.0], // vocab mass on the wrong word
        });
        let alpha = tape.input(Matrix {
            rows: 2,
            cols: 1,
            data: vec![0.95, 0.05],
        });
        let gate = tape.input(Matrix {
            rows: 1,
            cols: 1,
            data: vec![8.0], // sigmoid ≈ 1 → copy
        });
        let loss = tape.copy_nll(logits, alpha, gate, 2, vec![true, false]);
        assert!(tape.value(loss).data[0] < 0.2, "copy path should dominate");
    }
}
