#![forbid(unsafe_code)]
//! # cnp-nn — minimal neural-network library for CN-Probase
//!
//! The paper's *neural generation* component (§II) needs an
//! encoder-decoder with a copy mechanism (CopyNet, Gu et al. 2016). No
//! deep-learning framework is available offline, so this crate implements
//! the required machinery from scratch:
//!
//! * [`tensor`] — dense f32 matrices and stable softmax/sigmoid.
//! * [`params`] — learnable parameter storage with gradient accumulators.
//! * [`tape`] — reverse-mode autodiff over a linear tape, with a fused
//!   generate/copy mixture loss (gradient-checked against finite
//!   differences).
//! * [`vocab`] — token vocabulary with PAD/BOS/EOS/UNK.
//! * [`optim`] — Adam with global-norm gradient clipping.
//! * [`copynet`] — the GRU encoder-decoder with attention and copy
//!   mechanism, teacher-forced training, greedy and beam decoding.

pub mod copynet;
pub mod optim;
pub mod params;
pub mod tape;
pub mod tensor;
pub mod vocab;

pub use copynet::{CopyNet, CopyNetConfig, CopySample};
pub use optim::Adam;
pub use params::{ParamId, Params};
pub use tape::{NodeId, Tape};
pub use tensor::Matrix;
pub use vocab::Vocab;
