//! Token vocabulary with the special symbols CopyNet needs.
//!
//! Ids: `PAD=0`, `BOS=1`, `EOS=2`, `UNK=3`, then content words by insertion
//! order. Out-of-vocabulary source words map to `UNK` for the generate path
//! and are recoverable through the copy path (the whole point of CopyNet —
//! paper §II, “neural generation”).

use std::collections::HashMap;

/// Padding token id.
pub const PAD: u32 = 0;
/// Begin-of-sequence id.
pub const BOS: u32 = 1;
/// End-of-sequence id.
pub const EOS: u32 = 2;
/// Unknown-word id.
pub const UNK: u32 = 3;

/// String↔id vocabulary.
#[derive(Debug, Clone)]
pub struct Vocab {
    by_word: HashMap<String, u32>,
    words: Vec<String>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// Creates a vocabulary holding only the special tokens.
    pub fn new() -> Self {
        let words = vec![
            "<pad>".to_string(),
            "<bos>".to_string(),
            "<eos>".to_string(),
            "<unk>".to_string(),
        ];
        let by_word = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as u32))
            .collect();
        Vocab { by_word, words }
    }

    /// Builds a vocabulary from `(word, count)` pairs, keeping the
    /// `max_size` most frequent words (stable order for equal counts).
    pub fn build<I: IntoIterator<Item = (String, u64)>>(counts: I, max_size: usize) -> Self {
        let mut v = Vocab::new();
        let mut sorted: Vec<(String, u64)> = counts.into_iter().collect();
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (w, _) in sorted.into_iter().take(max_size.saturating_sub(4)) {
            v.add(&w);
        }
        v
    }

    /// Adds a word (idempotent), returning its id.
    pub fn add(&mut self, word: &str) -> u32 {
        if let Some(&id) = self.by_word.get(word) {
            return id;
        }
        let id = self.words.len() as u32;
        self.words.push(word.to_string());
        self.by_word.insert(word.to_string(), id);
        id
    }

    /// Id of `word`, or `UNK`.
    pub fn id(&self, word: &str) -> u32 {
        self.by_word.get(word).copied().unwrap_or(UNK)
    }

    /// Word of `id` (panics on out-of-range ids).
    pub fn word(&self, id: u32) -> &str {
        &self.words[id as usize]
    }

    /// Vocabulary size including specials.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Never empty (specials are always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Encodes a token sequence.
    pub fn encode<'a, I: IntoIterator<Item = &'a str>>(&self, tokens: I) -> Vec<u32> {
        tokens.into_iter().map(|t| self.id(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_are_fixed() {
        let v = Vocab::new();
        assert_eq!(v.id("<pad>"), PAD);
        assert_eq!(v.id("<bos>"), BOS);
        assert_eq!(v.id("<eos>"), EOS);
        assert_eq!(v.id("<unk>"), UNK);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn add_and_lookup() {
        let mut v = Vocab::new();
        let a = v.add("演员");
        assert_eq!(v.add("演员"), a);
        assert_eq!(v.id("演员"), a);
        assert_eq!(v.word(a), "演员");
        assert_eq!(v.id("没有的词"), UNK);
    }

    #[test]
    fn build_keeps_most_frequent() {
        let counts = vec![
            ("甲".to_string(), 10u64),
            ("乙".to_string(), 5),
            ("丙".to_string(), 1),
        ];
        let v = Vocab::build(counts, 6); // 4 specials + 2 words
        assert_ne!(v.id("甲"), UNK);
        assert_ne!(v.id("乙"), UNK);
        assert_eq!(v.id("丙"), UNK);
    }

    #[test]
    fn encode_maps_oov_to_unk() {
        let mut v = Vocab::new();
        v.add("歌手");
        assert_eq!(v.encode(["歌手", "新词"]), vec![4, UNK]);
    }
}
