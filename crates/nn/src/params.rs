//! Learnable parameter storage.
//!
//! Parameters live outside the tape so one parameter set can serve many
//! forward/backward passes (training) and tape-free passes (inference).

use crate::tensor::Matrix;
use rand::rngs::StdRng;

/// Handle to one parameter matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(pub usize);

/// A set of parameter matrices with matching gradient accumulators.
#[derive(Debug, Clone, Default)]
pub struct Params {
    mats: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl Params {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a Xavier-initialised matrix.
    pub fn add_xavier(&mut self, rows: usize, cols: usize, rng: &mut StdRng) -> ParamId {
        self.add(Matrix::xavier(rows, cols, rng))
    }

    /// Adds a zero matrix (for biases).
    pub fn add_zeros(&mut self, rows: usize, cols: usize) -> ParamId {
        self.add(Matrix::zeros(rows, cols))
    }

    /// Adds an explicit matrix.
    pub fn add(&mut self, m: Matrix) -> ParamId {
        let id = ParamId(self.mats.len());
        self.grads.push(Matrix::zeros(m.rows, m.cols));
        self.mats.push(m);
        id
    }

    /// Parameter value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    /// Mutable parameter value (optimizer step).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.mats[id.0]
    }

    /// Gradient accumulator.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Mutable gradient accumulator.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.grads[id.0]
    }

    /// Zeroes all gradients (start of a step).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Number of parameter matrices.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Global L2 norm of all gradients (for clipping).
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .flat_map(|g| g.data.iter())
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient by `factor` (gradient clipping).
    pub fn scale_grads(&mut self, factor: f32) {
        for g in &mut self.grads {
            for v in &mut g.data {
                *v *= factor;
            }
        }
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.mats.iter().map(|m| m.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn add_and_access() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = Params::new();
        let w = p.add_xavier(4, 3, &mut rng);
        let b = p.add_zeros(4, 1);
        assert_eq!(p.get(w).rows, 4);
        assert_eq!(p.get(b).data, vec![0.0; 4]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_scalars(), 16);
    }

    #[test]
    fn grads_track_shapes_and_zero() {
        let mut p = Params::new();
        let w = p.add(Matrix::from_fn(2, 2, |_, _| 1.0));
        p.grad_mut(w).data[0] = 5.0;
        assert_eq!(p.grad(w).data[0], 5.0);
        p.zero_grads();
        assert_eq!(p.grad(w).data, vec![0.0; 4]);
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut p = Params::new();
        let w = p.add(Matrix::zeros(1, 2));
        p.grad_mut(w).data = vec![3.0, 4.0];
        assert!((p.grad_norm() - 5.0).abs() < 1e-6);
        p.scale_grads(0.5);
        assert!((p.grad_norm() - 2.5).abs() < 1e-6);
    }
}
