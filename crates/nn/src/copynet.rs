//! CopyNet: GRU encoder-decoder with attention and a copy mechanism.
//!
//! The paper's *neural generation* component (§II) trains an
//! encoder-decoder on distant-supervision pairs (entity abstract →
//! hypernym) and uses CopyNet (Gu et al. 2016) because hypernyms are often
//! out-of-vocabulary yet present verbatim in the abstract. This module
//! implements that model:
//!
//! * GRU encoder over source tokens;
//! * GRU decoder with dot-product attention over encoder states;
//! * per-step output distribution mixing a *generate* softmax over the
//!   vocabulary with a *copy* distribution over source positions, gated by
//!   a learned sigmoid (the fused loss lives in [`crate::tape::Tape::copy_nll`]);
//! * teacher-forced training with Adam, greedy and beam-search decoding.

use crate::optim::Adam;
use crate::params::{ParamId, Params};
use crate::tape::{NodeId, Tape};
use crate::tensor::{sigmoid, softmax, Matrix};
use crate::vocab::{Vocab, BOS, EOS, UNK};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Model hyperparameters.
#[derive(Debug, Clone)]
pub struct CopyNetConfig {
    /// Embedding dimension.
    pub embed_dim: usize,
    /// GRU hidden dimension.
    pub hidden_dim: usize,
    /// Source sequences are truncated to this length.
    pub max_src_len: usize,
    /// Maximum decoded target length.
    pub max_tgt_len: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size (gradient accumulation window).
    pub batch_size: usize,
    /// RNG seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for CopyNetConfig {
    fn default() -> Self {
        CopyNetConfig {
            embed_dim: 32,
            hidden_dim: 48,
            max_src_len: 32,
            max_tgt_len: 5,
            lr: 0.01,
            batch_size: 8,
            seed: 42,
        }
    }
}

/// One distant-supervision sample: tokenised abstract → tokenised hypernym.
#[derive(Debug, Clone)]
pub struct CopySample {
    /// Source tokens (segmented abstract).
    pub src: Vec<String>,
    /// Target tokens (the hypernym, usually length 1).
    pub tgt: Vec<String>,
}

#[derive(Debug, Clone, Copy)]
struct GruParams {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
}

/// The CopyNet model.
#[derive(Debug)]
pub struct CopyNet {
    /// Generation vocabulary.
    pub vocab: Vocab,
    cfg: CopyNetConfig,
    params: Params,
    emb: ParamId,
    enc: GruParams,
    dec: GruParams,
    wo: ParamId,
    wg: ParamId,
    opt: Adam,
}

impl CopyNet {
    /// Creates a model over `vocab`.
    pub fn new(vocab: Vocab, cfg: CopyNetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = Params::new();
        let v = vocab.len();
        let (d, h) = (cfg.embed_dim, cfg.hidden_dim);
        let emb = params.add_xavier(v, d, &mut rng);
        let gru = |params: &mut Params, rng: &mut StdRng| GruParams {
            wz: params.add_xavier(h, d, rng),
            uz: params.add_xavier(h, h, rng),
            bz: params.add_zeros(h, 1),
            wr: params.add_xavier(h, d, rng),
            ur: params.add_xavier(h, h, rng),
            br: params.add_zeros(h, 1),
            wh: params.add_xavier(h, d, rng),
            uh: params.add_xavier(h, h, rng),
            bh: params.add_zeros(h, 1),
        };
        let enc = gru(&mut params, &mut rng);
        let dec = gru(&mut params, &mut rng);
        let wo = params.add_xavier(v, 2 * h, &mut rng);
        let wg = params.add_xavier(1, 2 * h, &mut rng);
        let opt = Adam::new(&params, cfg.lr);
        CopyNet {
            vocab,
            cfg,
            params,
            emb,
            enc,
            dec,
            wo,
            wg,
            opt,
        }
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Configuration.
    pub fn config(&self) -> &CopyNetConfig {
        &self.cfg
    }

    // ---- tape-based training forward ----

    fn gru_step(&self, tape: &mut Tape, g: GruParams, x: NodeId, h: NodeId) -> NodeId {
        let zx = tape.matvec(&self.params, g.wz, x);
        let zh = tape.matvec(&self.params, g.uz, h);
        let z = tape.add(zx, zh);
        let z = tape.add_bias(&self.params, g.bz, z);
        let z = tape.sigmoid(z);
        let rx = tape.matvec(&self.params, g.wr, x);
        let rh = tape.matvec(&self.params, g.ur, h);
        let r = tape.add(rx, rh);
        let r = tape.add_bias(&self.params, g.br, r);
        let r = tape.sigmoid(r);
        let gated = tape.hadamard(r, h);
        let cx = tape.matvec(&self.params, g.wh, x);
        let ch = tape.matvec(&self.params, g.uh, gated);
        let cand = tape.add(cx, ch);
        let cand = tape.add_bias(&self.params, g.bh, cand);
        let cand = tape.tanh(cand);
        // h' = z ⊙ h + (1 − z) ⊙ h̃
        tape.lerp(z, h, cand)
    }

    /// Teacher-forced loss of one sample; returns the scalar loss value.
    fn sample_loss(&self, tape: &mut Tape, sample: &CopySample) -> NodeId {
        let src_tokens: Vec<&str> = sample
            .src
            .iter()
            .take(self.cfg.max_src_len)
            .map(String::as_str)
            .collect();
        let src_ids: Vec<u32> = src_tokens.iter().map(|t| self.vocab.id(t)).collect();

        // Encoder.
        let mut h = tape.input(Matrix::zero_vec(self.cfg.hidden_dim));
        let mut states = Vec::with_capacity(src_ids.len());
        for &id in &src_ids {
            let x = tape.embed(&self.params, self.emb, id as usize);
            h = self.gru_step(tape, self.enc, x, h);
            states.push(h);
        }

        // Decoder with teacher forcing; final step predicts EOS.
        let mut losses = Vec::new();
        let mut s = h;
        let mut prev_id = BOS;
        let tgt_steps: Vec<(u32, Vec<bool>)> = sample
            .tgt
            .iter()
            .take(self.cfg.max_tgt_len)
            .map(|t| {
                let mask: Vec<bool> = src_tokens.iter().map(|st| *st == t).collect();
                (self.vocab.id(t), mask)
            })
            .chain(std::iter::once((EOS, vec![false; src_tokens.len()])))
            .collect();
        for (tgt_id, mask) in tgt_steps {
            let x = tape.embed(&self.params, self.emb, prev_id as usize);
            s = self.gru_step(tape, self.dec, x, s);
            let scores = tape.stack_dot(&states, s);
            let alpha = tape.softmax_v(scores);
            let ctx = tape.weighted_sum(&states, alpha);
            let cat = tape.concat2(s, ctx);
            let logits = tape.matvec(&self.params, self.wo, cat);
            let gate = tape.matvec(&self.params, self.wg, cat);
            losses.push(tape.copy_nll(logits, alpha, gate, tgt_id as usize, mask));
            prev_id = tgt_id;
        }
        tape.sum_scalars(&losses)
    }

    /// Trains one epoch over `samples` (shuffled), returning mean loss per
    /// target token.
    pub fn train_epoch(&mut self, samples: &[CopySample]) -> f32 {
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(self.opt_steps()));
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f64;
        let mut total_steps = 0usize;
        let mut in_batch = 0usize;
        for &i in &order {
            let sample = &samples[i];
            if sample.src.is_empty() || sample.tgt.is_empty() {
                continue;
            }
            let mut tape = Tape::new();
            let loss = self.sample_loss(&mut tape, sample);
            total_loss += f64::from(tape.value(loss).get(0, 0));
            total_steps += sample.tgt.len().min(self.cfg.max_tgt_len) + 1;
            tape.backward(loss, &mut self.params);
            in_batch += 1;
            if in_batch == self.cfg.batch_size {
                self.params.scale_grads(1.0 / in_batch as f32);
                self.opt.step(&mut self.params);
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            self.params.scale_grads(1.0 / in_batch as f32);
            self.opt.step(&mut self.params);
        }
        (total_loss / total_steps.max(1) as f64) as f32
    }

    fn opt_steps(&self) -> u64 {
        // Proxy for epoch counter (Adam's t advances once per batch).
        0
    }

    // ---- tape-free inference ----

    fn gru_plain(&self, g: GruParams, x: &Matrix, h: &Matrix) -> Matrix {
        let p = &self.params;
        let mut z = p.get(g.wz).matvec(x);
        z.add_scaled(&p.get(g.uz).matvec(h), 1.0);
        z.add_scaled(p.get(g.bz), 1.0);
        z.data.iter_mut().for_each(|v| *v = sigmoid(*v));
        let mut r = p.get(g.wr).matvec(x);
        r.add_scaled(&p.get(g.ur).matvec(h), 1.0);
        r.add_scaled(p.get(g.br), 1.0);
        r.data.iter_mut().for_each(|v| *v = sigmoid(*v));
        let gated = Matrix::from_fn(h.rows, 1, |i, _| r.data[i] * h.data[i]);
        let mut c = p.get(g.wh).matvec(x);
        c.add_scaled(&p.get(g.uh).matvec(&gated), 1.0);
        c.add_scaled(p.get(g.bh), 1.0);
        c.data.iter_mut().for_each(|v| *v = v.tanh());
        Matrix::from_fn(h.rows, 1, |i, _| {
            z.data[i] * h.data[i] + (1.0 - z.data[i]) * c.data[i]
        })
    }

    fn embed_plain(&self, id: u32) -> Matrix {
        let e = self.params.get(self.emb);
        Matrix::from_fn(e.cols, 1, |r, _| e.get(id as usize, r))
    }

    /// Per-step combined distribution over output *strings*:
    /// `(1−g)·p_gen` over vocabulary words plus `g·α` mass on source tokens.
    fn step_distribution(
        &self,
        states: &[Matrix],
        src_tokens: &[&str],
        s: &Matrix,
    ) -> Vec<(String, f32)> {
        let scores: Vec<f32> = states.iter().map(|h| h.dot(s)).collect();
        let alpha = softmax(&scores);
        let mut ctx = Matrix::zero_vec(self.cfg.hidden_dim);
        for (h, &a) in states.iter().zip(&alpha) {
            ctx.add_scaled(h, a);
        }
        let mut cat = Matrix::zero_vec(2 * self.cfg.hidden_dim);
        cat.data[..self.cfg.hidden_dim].copy_from_slice(&s.data);
        cat.data[self.cfg.hidden_dim..].copy_from_slice(&ctx.data);
        let logits = self.params.get(self.wo).matvec(&cat);
        let p_gen = softmax(&logits.data);
        let g = sigmoid(self.params.get(self.wg).matvec(&cat).data[0]);

        let mut dist: std::collections::HashMap<String, f32> = std::collections::HashMap::new();
        for (id, &p) in p_gen.iter().enumerate() {
            if (id as u32) == UNK || (id as u32) == BOS || id == 0 {
                continue;
            }
            *dist
                .entry(self.vocab.word(id as u32).to_string())
                .or_insert(0.0) += (1.0 - g) * p;
        }
        for (tok, &a) in src_tokens.iter().zip(&alpha) {
            *dist.entry((*tok).to_string()).or_insert(0.0) += g * a;
        }
        let mut out: Vec<(String, f32)> = dist.into_iter().collect();
        // Deterministic ordering: probability desc, then token asc — exact
        // ties happen (e.g. several UNK source tokens share an embedding)
        // and must not depend on HashMap iteration order.
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        out
    }

    fn encode_plain<'a>(&self, src: &'a [String]) -> (Vec<Matrix>, Vec<&'a str>) {
        let src_tokens: Vec<&str> = src
            .iter()
            .take(self.cfg.max_src_len)
            .map(String::as_str)
            .collect();
        let mut h = Matrix::zero_vec(self.cfg.hidden_dim);
        let mut states = Vec::with_capacity(src_tokens.len());
        for tok in &src_tokens {
            let x = self.embed_plain(self.vocab.id(tok));
            h = self.gru_plain(self.enc, &x, &h);
            states.push(h.clone());
        }
        (states, src_tokens)
    }

    /// Greedy decoding: returns generated target tokens (without EOS).
    pub fn generate(&self, src: &[String]) -> Vec<String> {
        if src.is_empty() {
            return Vec::new();
        }
        let (states, src_tokens) = self.encode_plain(src);
        let mut s = states.last().cloned().unwrap();
        let mut prev = BOS;
        let mut out = Vec::new();
        for _ in 0..self.cfg.max_tgt_len {
            let x = self.embed_plain(prev);
            s = self.gru_plain(self.dec, &x, &s);
            let dist = self.step_distribution(&states, &src_tokens, &s);
            let Some((best, _)) = dist.first() else { break };
            if best == "<eos>" {
                break;
            }
            out.push(best.clone());
            prev = self.vocab.id(best);
        }
        out
    }

    /// Beam-search decoding with the given width; returns the best sequence.
    pub fn generate_beam(&self, src: &[String], width: usize) -> Vec<String> {
        if src.is_empty() || width == 0 {
            return Vec::new();
        }
        let (states, src_tokens) = self.encode_plain(src);
        let s0 = states.last().cloned().unwrap();

        struct Beam {
            tokens: Vec<String>,
            state: Matrix,
            prev: u32,
            logp: f32,
            done: bool,
        }
        let mut beams = vec![Beam {
            tokens: Vec::new(),
            state: s0,
            prev: BOS,
            logp: 0.0,
            done: false,
        }];
        for _ in 0..self.cfg.max_tgt_len {
            let mut next: Vec<Beam> = Vec::new();
            for beam in &beams {
                if beam.done {
                    next.push(Beam {
                        tokens: beam.tokens.clone(),
                        state: beam.state.clone(),
                        prev: beam.prev,
                        logp: beam.logp,
                        done: true,
                    });
                    continue;
                }
                let x = self.embed_plain(beam.prev);
                let s = self.gru_plain(self.dec, &x, &beam.state);
                let dist = self.step_distribution(&states, &src_tokens, &s);
                for (tok, p) in dist.into_iter().take(width) {
                    let mut tokens = beam.tokens.clone();
                    let done = tok == "<eos>";
                    if !done {
                        tokens.push(tok.clone());
                    }
                    next.push(Beam {
                        prev: self.vocab.id(&tok),
                        tokens,
                        state: s.clone(),
                        logp: beam.logp + p.max(1e-12).ln(),
                        done,
                    });
                }
            }
            next.sort_by(|a, b| b.logp.partial_cmp(&a.logp).unwrap());
            next.truncate(width);
            let all_done = next.iter().all(|b| b.done);
            beams = next;
            if all_done {
                break;
            }
        }
        beams
            .into_iter()
            .max_by(|a, b| a.logp.partial_cmp(&b.logp).unwrap())
            .map(|b| b.tokens)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CopyNetConfig {
        CopyNetConfig {
            embed_dim: 16,
            hidden_dim: 24,
            max_src_len: 10,
            max_tgt_len: 3,
            lr: 0.02,
            batch_size: 4,
            seed: 5,
        }
    }

    fn make_samples() -> (Vocab, Vec<CopySample>) {
        // Pattern: "X 是 著名 C 。" → C, for a handful of concepts.
        let concepts = ["演员", "歌手", "作家", "医生", "画家"];
        let subjects = ["甲", "乙", "丙", "丁", "戊", "己", "庚", "辛"];
        let mut counts: Vec<(String, u64)> = Vec::new();
        for w in ["是", "著名", "。"].iter().chain(concepts.iter()) {
            counts.push(((*w).to_string(), 100));
        }
        let vocab = Vocab::build(counts, 64);
        let mut samples = Vec::new();
        for (i, subj) in subjects.iter().enumerate() {
            let c = concepts[i % concepts.len()];
            samples.push(CopySample {
                src: vec![
                    (*subj).to_string(),
                    "是".to_string(),
                    "著名".to_string(),
                    c.to_string(),
                    "。".to_string(),
                ],
                tgt: vec![c.to_string()],
            });
        }
        (vocab, samples)
    }

    #[test]
    fn training_reduces_loss() {
        let (vocab, samples) = make_samples();
        let mut model = CopyNet::new(vocab, tiny_config());
        let first = model.train_epoch(&samples);
        let mut last = first;
        for _ in 0..30 {
            last = model.train_epoch(&samples);
        }
        assert!(
            last < first * 0.5,
            "loss did not halve: first {first}, last {last}"
        );
    }

    #[test]
    fn learns_to_extract_concept() {
        let (vocab, samples) = make_samples();
        let mut model = CopyNet::new(vocab, tiny_config());
        for _ in 0..60 {
            model.train_epoch(&samples);
        }
        let mut correct = 0;
        for s in &samples {
            let out = model.generate(&s.src);
            if out.first().map(String::as_str) == Some(s.tgt[0].as_str()) {
                correct += 1;
            }
        }
        assert!(
            correct >= samples.len() - 1,
            "only {correct}/{} training samples recovered",
            samples.len()
        );
    }

    #[test]
    fn copies_oov_concept_from_source() {
        // Target word 剑客 is NOT in the vocabulary: only the copy path can
        // produce it. Train on pattern where the concept follows 著名.
        let (vocab, mut samples) = make_samples();
        assert_eq!(vocab.id("剑客"), UNK);
        // Several OOV-target samples to make the gate learn to copy.
        for subj in ["壬", "癸", "子", "丑"] {
            samples.push(CopySample {
                src: vec![
                    subj.to_string(),
                    "是".to_string(),
                    "著名".to_string(),
                    "剑客".to_string(),
                    "。".to_string(),
                ],
                tgt: vec!["剑客".to_string()],
            });
        }
        let mut model = CopyNet::new(vocab, tiny_config());
        for _ in 0..80 {
            model.train_epoch(&samples);
        }
        let out = model.generate(&[
            "寅".to_string(),
            "是".to_string(),
            "著名".to_string(),
            "剑客".to_string(),
            "。".to_string(),
        ]);
        assert_eq!(out.first().map(String::as_str), Some("剑客"));
    }

    #[test]
    fn beam_matches_or_beats_greedy_on_training_data() {
        let (vocab, samples) = make_samples();
        let mut model = CopyNet::new(vocab, tiny_config());
        for _ in 0..40 {
            model.train_epoch(&samples);
        }
        let s = &samples[0];
        let greedy = model.generate(&s.src);
        let beam = model.generate_beam(&s.src, 3);
        assert!(!beam.is_empty());
        // Both should produce the target on well-fit training data.
        assert_eq!(greedy.first(), beam.first());
    }

    #[test]
    fn empty_source_yields_empty_output() {
        let (vocab, _) = make_samples();
        let model = CopyNet::new(vocab, tiny_config());
        assert!(model.generate(&[]).is_empty());
        assert!(model.generate_beam(&[], 3).is_empty());
    }

    #[test]
    fn parameter_count_is_reported() {
        let (vocab, _) = make_samples();
        let model = CopyNet::new(vocab, tiny_config());
        assert!(model.num_parameters() > 1000);
    }
}
