//! Adam optimizer with gradient clipping.

use crate::params::Params;
use crate::tensor::Matrix;

/// Adam (Kingma & Ba 2015) over a [`Params`] set.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    /// Global-norm clip threshold (0 disables clipping).
    pub clip_norm: f32,
}

impl Adam {
    /// Creates an optimizer for `params` with learning rate `lr`.
    pub fn new(params: &Params, lr: f32) -> Self {
        let shapes: Vec<(usize, usize)> = (0..params.len())
            .map(|i| {
                let m = params.get(crate::params::ParamId(i));
                (m.rows, m.cols)
            })
            .collect();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: shapes.iter().map(|&(r, c)| Matrix::zeros(r, c)).collect(),
            v: shapes.iter().map(|&(r, c)| Matrix::zeros(r, c)).collect(),
            clip_norm: 5.0,
        }
    }

    /// Applies one update from the accumulated gradients, then zeroes them.
    pub fn step(&mut self, params: &mut Params) {
        if self.clip_norm > 0.0 {
            let norm = params.grad_norm();
            if norm > self.clip_norm {
                params.scale_grads(self.clip_norm / norm);
            }
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let pid = crate::params::ParamId(i);
            let g = params.grad(pid).clone();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for j in 0..g.data.len() {
                m.data[j] = self.beta1 * m.data[j] + (1.0 - self.beta1) * g.data[j];
                v.data[j] = self.beta2 * v.data[j] + (1.0 - self.beta2) * g.data[j] * g.data[j];
                let m_hat = m.data[j] / b1t;
                let v_hat = v.data[j] / b2t;
                params.get_mut(pid).data[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        params.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    /// Adam must minimise a simple quadratic `f(w) = (w − 3)²`.
    #[test]
    fn minimises_quadratic() {
        let mut params = Params::new();
        let w = params.add(Matrix {
            rows: 1,
            cols: 1,
            data: vec![0.0],
        });
        let mut adam = Adam::new(&params, 0.1);
        for _ in 0..300 {
            let cur = params.get(w).data[0];
            params.grad_mut(w).data[0] = 2.0 * (cur - 3.0);
            adam.step(&mut params);
        }
        let final_w = params.get(w).data[0];
        assert!((final_w - 3.0).abs() < 0.05, "w = {final_w}");
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut params = Params::new();
        let w = params.add(Matrix {
            rows: 1,
            cols: 1,
            data: vec![0.0],
        });
        let mut adam = Adam::new(&params, 0.1);
        adam.clip_norm = 1.0;
        params.grad_mut(w).data[0] = 1e6;
        adam.step(&mut params);
        // First Adam step magnitude is ≈ lr regardless, but the clipped
        // gradient keeps moments sane: a second tiny gradient must not
        // produce an explosive update.
        let after_first = params.get(w).data[0];
        assert!(after_first.abs() < 0.2);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut params = Params::new();
        let w = params.add(Matrix {
            rows: 1,
            cols: 1,
            data: vec![0.0],
        });
        let mut adam = Adam::new(&params, 0.01);
        params.grad_mut(w).data[0] = 1.0;
        adam.step(&mut params);
        assert_eq!(params.grad(w).data[0], 0.0);
    }
}
