#![forbid(unsafe_code)]
//! # CN-Probase — facade crate
//!
//! A complete Rust reproduction of **“CN-Probase: A Data-driven Approach for
//! Large-scale Chinese Taxonomy Construction”** (Chen et al., ICDE 2019).
//!
//! This crate re-exports the public APIs of the workspace members so a
//! downstream user can depend on a single crate:
//!
//! * [`text`] — Chinese segmentation, PMI, POS, NER ([`cnp_text`]).
//! * [`nn`] — minimal neural network library with CopyNet ([`cnp_nn`]).
//! * [`runtime`] — the shared parallel execution layer every pipeline
//!   stage runs on ([`cnp_runtime`]).
//! * [`encyclopedia`] — synthetic Chinese-encyclopedia substrate
//!   ([`cnp_encyclopedia`]).
//! * [`taxonomy`] — the taxonomy storage engine and the frozen serving
//!   snapshot ([`cnp_taxonomy`]).
//! * [`serve`] — Serving API v1: the typed [`Query`]/[`Response`] protocol,
//!   batching, pagination and zero-downtime snapshot hot-swap, plus the
//!   [`ProbaseApi`] Table II compatibility wrapper ([`cnp_serve`]).
//! * [`tag`] — taxonomy-backed document tagging: segment a document with
//!   the snapshot's own vocabulary, resolve mentions, and score concepts
//!   coarse-to-fine over the hierarchy ([`cnp_tag`]).
//! * [`server`] — the HTTP/1.1 network front-end over [`serve`], plus the
//!   `cnp_load` load harness ([`cnp_server`]).
//! * [`pipeline`] — the generation + verification framework itself
//!   ([`cnp_core`]).
//! * [`eval`] — precision / coverage evaluation and the Table I baselines
//!   ([`cnp_eval`]).
//!
//! ## Quickstart
//!
//! ```
//! use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
//! use cn_probase::pipeline::{Pipeline, PipelineConfig};
//!
//! // Generate a small synthetic encyclopedia and build a taxonomy from it.
//! let corpus = CorpusGenerator::new(CorpusConfig::tiny(7)).generate();
//! let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
//! assert!(outcome.taxonomy.num_is_a() > 0);
//! ```

pub use cnp_core as pipeline;
pub use cnp_encyclopedia as encyclopedia;
pub use cnp_eval as eval;
pub use cnp_nn as nn;
pub use cnp_runtime as runtime;
pub use cnp_serve as serve;
pub use cnp_server as server;
pub use cnp_tag as tag;
pub use cnp_taxonomy as taxonomy;
pub use cnp_text as text;

// The headline serving types, re-exported at the crate root: build a
// taxonomy with [`pipeline`], freeze it into a [`FrozenTaxonomy`], persist
// it with `save_to_file` (snapshot format v2) and boot a [`TaxonomyService`]
// straight from disk with `from_snapshot_file`; [`Snapshot`] dispatches on
// the format version, [`PersistError`] is the decode error. Queries travel
// as typed [`Query`] values and come back as generation-stamped
// [`QueryResponse`]s; [`ProbaseApi`] is the paper-era Table II wrapper.
pub use cnp_serve::{
    Cursor, ListOptions, PageRequest, ProbaseApi, Query, QueryError, QueryResponse, Response,
    TaxonomyService,
};
pub use cnp_tag::{TagOptions, TagOutput, Tagger};
pub use cnp_taxonomy::{
    AnySnapshot, BootSnapshot, DeltaOverlay, FrozenTaxonomy, FrozenTaxonomyView, IngestDelta,
    OverlayView, PersistError, Snapshot, TaxonomyRead,
};
