#!/usr/bin/env python3
"""Merge a cnp_load report and criterion logs into one BENCH_<n>.json.

The output is the per-PR performance trajectory file: the load harness's
wire-level latency/QPS numbers next to the key in-process criterion
medians, so regressions show up as a diff against the committed file.

Usage:
    bench_report.py --pr 8 --load /tmp/load_report.json \
        --criterion /tmp/criterion.log [--criterion more.log] \
        [--snapshot-file v2=/tmp/cnp_v2.snapshot] \
        [--snapshot-file v3=/tmp/cnp.snapshot] \
        --out BENCH_8.json

Each --snapshot-file NAME=PATH records the file's on-disk byte size under
"snapshotBytes". When both v2 and v3 sizes are present, and when the
criterion logs hold both snapshot_boot/load_v2 and
snapshot_boot/load_v3_view medians, a "derived" block spells out the
v3-vs-v2 size reduction and boot speedup so the trajectory diff shows the
headline numbers directly.

Only the standard library is used; the criterion lines parsed are the
vendored harness's summary format:

    group/bench/param    14161133.0 ns/iter (10 iters)
"""

import argparse
import json
import os
import re
import sys

CRITERION_LINE = re.compile(
    r"^\s*(?P<name>\S+)\s+(?P<ns>\d+(?:\.\d+)?)\s+ns/iter\s+\((?P<iters>\d+)\s+iters?\)\s*$"
)


def parse_criterion(paths):
    medians = {}
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                match = CRITERION_LINE.match(line)
                if match:
                    medians[match.group("name")] = float(match.group("ns"))
    return medians


def snapshot_sizes(specs):
    sizes = {}
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise SystemExit(f"bench_report: bad --snapshot-file {spec!r} (want NAME=PATH)")
        sizes[name] = os.path.getsize(path)
    return sizes


def derived_metrics(sizes, criterion):
    derived = {}
    if sizes.get("v2") and sizes.get("v3"):
        derived["v3SizeReductionVsV2"] = round(1.0 - sizes["v3"] / sizes["v2"], 4)
    v2_boot = criterion.get("snapshot_boot/load_v2")
    v3_boot = criterion.get("snapshot_boot/load_v3_view")
    if v2_boot and v3_boot:
        derived["v3ViewBootSpeedupVsV2"] = round(v2_boot / v3_boot, 2)
    return derived


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pr", type=int, required=True, help="PR number for the trajectory")
    parser.add_argument("--load", required=True, help="cnp_load --out report")
    parser.add_argument(
        "--criterion",
        action="append",
        default=[],
        help="criterion log file (repeatable)",
    )
    parser.add_argument(
        "--snapshot-file",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="record a snapshot file's byte size under snapshotBytes (repeatable)",
    )
    parser.add_argument("--out", required=True, help="output BENCH_<n>.json path")
    args = parser.parse_args()

    with open(args.load, encoding="utf-8") as fh:
        load = json.load(fh)

    if load.get("counts", {}).get("protocolError", 0):
        print("bench_report: load report contains protocol errors", file=sys.stderr)
        return 1

    criterion = parse_criterion(args.criterion)
    if args.criterion and not criterion:
        print("bench_report: criterion logs yielded no parseable lines", file=sys.stderr)
        return 1

    sizes = snapshot_sizes(args.snapshot_file)

    report = {
        "pr": args.pr,
        "kind": "serving-load-smoke",
        "load": load,
        "criterionNsPerIter": dict(sorted(criterion.items())),
    }
    if sizes:
        report["snapshotBytes"] = dict(sorted(sizes.items()))
    derived = derived_metrics(sizes, criterion)
    if derived:
        report["derived"] = derived
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, ensure_ascii=False, sort_keys=False)
        fh.write("\n")
    print(f"bench_report: wrote {args.out} ({len(criterion)} criterion entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
