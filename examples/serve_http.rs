//! The serving stack on a wire, end to end: boot `cnp_server` on an
//! ephemeral port, talk to it over real TCP with the typed JSON protocol,
//! hot-swap the snapshot mid-traffic, and run a miniature `cnp_load`
//! workload against it.
//!
//! Uses `CNP_SNAPSHOT` when set (CI runs it against the snapshot the
//! `build_taxonomy` example just wrote), otherwise builds a small
//! taxonomy in-process. Exits non-zero on any inconsistency, so CI can
//! use it as the wire smoke test.
//!
//! ```sh
//! CNP_SNAPSHOT=/tmp/cnp.snapshot cargo run --release --example build_taxonomy
//! CNP_SNAPSHOT=/tmp/cnp.snapshot cargo run --release --example serve_http
//! ```

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::pipeline::{Pipeline, PipelineConfig};
use cn_probase::serve::json::Json;
use cn_probase::serve::wire;
use cn_probase::server::{http, load, serve, LoadConfig, ProbeVocab, ServerConfig};
use cn_probase::{Query, TaxonomyService};
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

#[allow(clippy::disallowed_methods)] // diverging demo helper; the examples hold no state worth unwinding
fn fail(msg: &str) -> ! {
    eprintln!("serve_http: {msg}");
    std::process::exit(1);
}

fn build_snapshot(seed: u64, name: &str) -> PathBuf {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(seed)).generate();
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let path = std::env::temp_dir().join(name);
    outcome
        .save_frozen(&path)
        .unwrap_or_else(|e| fail(&format!("cannot write snapshot: {e}")));
    path
}

/// One HTTP exchange on a fresh connection; returns `(status, body)`.
fn exchange(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));
    let read_half = stream
        .try_clone()
        .unwrap_or_else(|e| fail(&format!("clone: {e}")));
    let mut writer = BufWriter::new(stream);
    let mut reader = BufReader::new(read_half);
    let payload = (!body.is_empty()).then_some(body.as_bytes());
    http::write_request(&mut writer, method, path, payload, false)
        .unwrap_or_else(|e| fail(&format!("{method} {path}: write: {e}")));
    let response = http::read_client_response(&mut reader, http::MAX_BODY_BYTES)
        .unwrap_or_else(|e| fail(&format!("{method} {path}: read: {e}")))
        .unwrap_or_else(|| fail(&format!("{method} {path}: server closed early")));
    let text = std::str::from_utf8(&response.body)
        .unwrap_or_else(|_| fail(&format!("{method} {path}: non-UTF-8 body")));
    let doc = Json::parse(text)
        .unwrap_or_else(|e| fail(&format!("{method} {path}: unparseable body: {e}")));
    (response.status, doc)
}

fn main() {
    let boot_path = match std::env::var("CNP_SNAPSHOT") {
        Ok(p) if std::path::Path::new(&p).exists() => PathBuf::from(p),
        _ => build_snapshot(21, "cnp_serve_http_a.cnpb"),
    };

    // ----- boot the wire ---------------------------------------------------
    let service = Arc::new(
        TaxonomyService::from_snapshot_file(&boot_path)
            .unwrap_or_else(|e| fail(&format!("boot from {}: {e}", boot_path.display()))),
    );
    let boot_generation = service.generation();
    let config = ServerConfig {
        snapshot_path: Some(boot_path.clone()),
        ..ServerConfig::default()
    };
    let handle =
        serve(Arc::clone(&service), config).unwrap_or_else(|e| fail(&format!("bind: {e}")));
    let addr = handle.addr();
    println!("cnp_server on {addr}, generation {boot_generation}");

    // ----- health ----------------------------------------------------------
    let (status, doc) = exchange(addr, "GET", "/v1/health", "");
    if status != 200 || doc.get("status").and_then(Json::as_str) != Some("ok") {
        fail(&format!("health: status {status}, body {}", doc.write()));
    }

    // ----- a typed query over the wire -------------------------------------
    let vocab =
        ProbeVocab::from_snapshot_file(&boot_path).unwrap_or_else(|e| fail(&format!("vocab: {e}")));
    if !vocab.is_usable() {
        fail("snapshot yields an empty probe vocabulary");
    }
    let mention = vocab.mentions[0].clone();
    let query = Query::men2ent(mention.clone());
    let (status, doc) = exchange(
        addr,
        "POST",
        "/v1/query",
        &wire::encode_query(&query).write(),
    );
    if status != 200 {
        fail(&format!("men2ent({mention}): status {status}"));
    }
    let response = wire::decode_response(&doc)
        .unwrap_or_else(|e| fail(&format!("men2ent({mention}): bad envelope: {e}")));
    if response.generation != boot_generation || response.result.is_err() {
        fail(&format!("men2ent({mention}): {response:?}"));
    }
    // Wire round-trip matches the in-process answer exactly.
    if response.result != service.execute(&query).result {
        fail("wire answer diverges from the in-process answer");
    }
    println!("men2ent({mention}): OK over the wire, matches in-process");

    // ----- a batch ---------------------------------------------------------
    let queries: Vec<Query> = vocab
        .mentions
        .iter()
        .take(16)
        .cloned()
        .map(Query::men2ent)
        .collect();
    let batch_body = Json::Obj(vec![(
        "queries".to_string(),
        Json::Arr(queries.iter().map(wire::encode_query).collect()),
    )]);
    let (status, doc) = exchange(addr, "POST", "/v1/batch", &batch_body.write());
    let responses = doc.get("responses").and_then(Json::as_arr);
    if status != 200 || responses.map_or(true, |r| r.len() != queries.len()) {
        fail(&format!("batch: status {status}, body {}", doc.write()));
    }
    println!("batch: {} queries in one request", queries.len());

    // ----- hostile input is refused, connection-by-connection --------------
    let (status, _) = exchange(addr, "POST", "/v1/query", "this is not json");
    if status != 400 {
        fail(&format!("malformed body: expected 400, got {status}"));
    }
    let (status, _) = exchange(addr, "POST", "/v1/nope", "{}");
    if status != 404 {
        fail(&format!("unknown endpoint: expected 404, got {status}"));
    }

    // ----- hot-swap over the wire ------------------------------------------
    let (status, doc) = exchange(addr, "POST", "/admin/reload", "");
    let reloaded = doc.get("generation").and_then(Json::as_u64);
    if status != 200 || reloaded != Some(boot_generation + 1) {
        fail(&format!("reload: status {status}, body {}", doc.write()));
    }
    let (_, doc) = exchange(
        addr,
        "POST",
        "/v1/query",
        &wire::encode_query(&query).write(),
    );
    let served =
        wire::decode_response(&doc).unwrap_or_else(|e| fail(&format!("post-reload query: {e}")));
    if served.generation != boot_generation + 1 {
        fail("post-reload traffic not on the new generation");
    }
    println!(
        "reload over the wire: generation {} -> {}",
        boot_generation, served.generation
    );

    // ----- a miniature load run against the live server --------------------
    let load_config = LoadConfig {
        addr: addr.to_string(),
        connections: 4,
        requests: 400,
        seed: 7,
        ingest_deltas: 1,
        tag_ratio: 0.25,
    };
    let t = Instant::now();
    let report = load::run(&load_config, &vocab);
    println!(
        "load: {} requests in {:.1?}: ok={} queryError={} overloaded={} protocolError={} p99={}us",
        load_config.requests,
        t.elapsed(),
        report.counts.ok,
        report.counts.query_error,
        report.counts.overloaded,
        report.counts.protocol_error,
        report.percentile_us(0.99),
    );
    if let Some(ingest) = &report.ingest {
        println!(
            "ingest under load: ok={} failed={} generations={:?}",
            ingest.ok, ingest.failed, ingest.generations
        );
    }
    if report.tag_issued > 0 {
        println!(
            "tag under load: issued={} served={} p99={}us",
            report.tag_issued,
            report.tag_latencies_us.len(),
            report.tag_percentile_us(0.99),
        );
    }
    if let Err(e) = report.check(None) {
        fail(&format!("load run: {e}"));
    }
    if report.counts.ok == 0 {
        fail("load run served nothing");
    }

    handle.shutdown();
    println!("serving over HTTP smoke: OK");
}
