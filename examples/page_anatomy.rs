//! Figure 1: the anatomy of a Chinese encyclopedia page — bracket (a),
//! abstract (b), infobox (c) and tag (d) — shown on the paper's 刘德华
//! example and on a freshly generated page.
//!
//! ```sh
//! cargo run --release --example page_anatomy
//! ```

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator, InfoboxTriple, Page};

fn show(page: &Page) {
    println!("entity key : {}", page.key());
    println!("(a) bracket : {}", page.bracket.as_deref().unwrap_or("—"));
    println!("(b) abstract: {}", page.abstract_text);
    println!("(c) infobox :");
    for t in &page.infobox {
        println!("      {} = {}", t.predicate, t.value);
    }
    println!("(d) tags    : {}", page.tags.join("、"));
    if !page.aliases.is_empty() {
        println!("    aliases : {}", page.aliases.join("、"));
    }
}

fn main() {
    // The paper's own Figure 1 example.
    let liu_dehua = Page {
        name: "刘德华".into(),
        bracket: Some("中国香港男演员、歌手、词作人".into()),
        abstract_text: "刘德华（Andy Lau），1961年9月27日出生于中国香港，男演员、歌手、\
                        作词人、制片人。1981年出演电影处女作《彩云曲》。"
            .into(),
        infobox: vec![
            InfoboxTriple::new("中文名", "刘德华"),
            InfoboxTriple::new("职业", "演员"),
            InfoboxTriple::new("代表作品", "忘情水"),
            InfoboxTriple::new("体重", "63KG"),
        ],
        tags: vec![
            "人物".into(),
            "演员".into(),
            "娱乐人物".into(),
            "音乐".into(),
        ],
        aliases: vec!["Andy Lau".into()],
    };
    println!("================ Figure 1: the paper's example ================");
    show(&liu_dehua);

    // A generated page with the same anatomy.
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(1)).generate();
    let generated = corpus
        .pages
        .iter()
        .find(|p| p.bracket.is_some() && p.infobox.len() >= 4)
        .expect("a rich generated page exists");
    println!("\n================ a generated page (same anatomy) ================");
    show(generated);
    println!(
        "\ngold hypernyms of this page: {:?}",
        corpus
            .gold
            .hypernyms_of(&generated.key())
            .map(|s| {
                let mut v: Vec<_> = s.iter().cloned().collect();
                v.sort();
                v
            })
            .unwrap_or_default()
    );
}
