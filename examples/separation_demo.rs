//! Figure 3: the separation algorithm, step by step.
//!
//! Segments bracket noun compounds, shows the PMI comparisons that drive
//! the merges, the resulting binary tree and the extracted hypernyms —
//! on the paper's 蚂蚁金服首席战略官 example and on generated brackets.
//!
//! ```sh
//! cargo run --release --example separation_demo
//! ```

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::pipeline::generation::bracket::{SepNode, SeparationAlgorithm};
use cn_probase::pipeline::PipelineContext;

fn render(node: &SepNode) -> String {
    match node {
        SepNode::Leaf(w) => w.clone(),
        SepNode::Branch(l, r) => format!("({} ⊕ {})", render(l), render(r)),
    }
}

fn main() {
    // Corpus statistics drive both segmentation and PMI.
    let corpus = CorpusGenerator::new(CorpusConfig::small(99)).generate();
    let ctx = PipelineContext::build(&corpus, 4);
    let alg = SeparationAlgorithm::new(&ctx.segmenter, &ctx.pmi);

    let examples = [
        "蚂蚁金服首席战略官", // the paper's Figure 3
        "中国香港男演员、歌手",
        "星辰科技首席执行官",
        "美国动作片",
    ];
    for bracket in examples {
        println!("bracket: {bracket}");
        for part in bracket.split('、') {
            let words = ctx.segmenter.words(part);
            println!("  part {part:?} segmented as {words:?}");
            for w in words.windows(2) {
                println!(
                    "    PMI({}, {}) = {:+.3}",
                    w[0],
                    w[1],
                    ctx.pmi.pmi(&w[0], &w[1])
                );
            }
            if let Some(r) = alg.separate_compound(part) {
                println!("    tree     : {}", render(&r.tree));
                println!("    hypernyms: {:?}", r.hypernyms);
            }
        }
        println!();
    }

    // And a handful of real generated brackets.
    println!("---- generated brackets ----");
    for page in corpus.pages.iter().filter(|p| p.bracket.is_some()).take(5) {
        let bracket = page.bracket.as_deref().unwrap();
        let hypernyms: Vec<Vec<String>> = alg
            .separate(bracket)
            .into_iter()
            .map(|r| r.hypernyms)
            .collect();
        println!("{}（{bracket}）-> {hypernyms:?}", page.name);
    }
}
