//! Tag documents straight off a snapshot file — the second serving
//! workload, end to end.
//!
//! Boots a [`TaxonomyService`] from `CNP_SNAPSHOT` (any format; v3 serves
//! zero-copy), stitches a handful of documents out of the snapshot's own
//! linked entities, and runs them through `Query::Tag`: segmentation
//! seeded by the snapshot vocabulary, men2ent span resolution, and
//! coarse-to-fine concept scoring. Set `CNP_DOC` to tag your own text
//! instead.
//!
//! ```sh
//! CNP_SNAPSHOT=/tmp/cnp.snapshot cargo run --release --example build_taxonomy
//! CNP_SNAPSHOT=/tmp/cnp.snapshot cargo run --release --example tag_document
//! CNP_DOC="刘德华和张学友在香港开演唱会。" cargo run --release --example tag_document
//! ```
//!
//! Exits non-zero when the snapshot fails to load or when no generated
//! document produces a single concept, so CI can use it as the tagging
//! smoke check.

use cn_probase::taxonomy::{AnySnapshot, EntityId, TaxonomyRead};
use cn_probase::{Query, Response, TagOptions, TaxonomyService};
use std::path::Path;
use std::time::Instant;

/// Short synthetic documents stitched from the snapshot's own linked
/// entities: every mention is in-vocabulary, so the full resolve-and-score
/// path runs (CI smoke); real documents just swap in via `CNP_DOC`.
fn documents_from(f: &impl TaxonomyRead, limit: usize) -> Vec<String> {
    let mut mentions = Vec::new();
    for e in (0..f.num_entities() as u32).map(EntityId) {
        if f.concepts_of(e).next().is_some() {
            mentions.push(f.resolve(f.entity(e).name).to_string());
        }
        if mentions.len() >= limit * 2 {
            break;
        }
    }
    mentions
        .chunks(2)
        .take(limit)
        .map(|pair| format!("{}。", pair.join("和")))
        .collect()
}

fn main() -> std::process::ExitCode {
    let path = std::env::var("CNP_SNAPSHOT").unwrap_or_else(|_| "/tmp/cnp.snapshot".to_string());
    let t = Instant::now();
    let service = match TaxonomyService::<AnySnapshot>::boot_from_file(Path::new(&path)) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("failed to boot from snapshot {path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    println!("booted tagging service from {path} in {:.1?}", t.elapsed());

    let docs = match std::env::var("CNP_DOC") {
        Ok(doc) => vec![doc],
        Err(_) => documents_from(service.pin().frozen(), 3),
    };
    if docs.is_empty() {
        eprintln!("snapshot holds no linked entity to build a document from");
        return std::process::ExitCode::FAILURE;
    }

    let mut tagged = 0;
    for doc in &docs {
        let query = Query::Tag {
            text: doc.clone(),
            options: TagOptions::default(),
        };
        let response = service.execute(&query);
        let Ok(Response::Tags(output)) = response.result else {
            eprintln!("tag query failed on {doc:?}: {:?}", response.result);
            return std::process::ExitCode::FAILURE;
        };
        println!("\ntag({doc})");
        for span in &output.spans {
            println!("  span [{}, {}) {:?}", span.start, span.end, span.text);
        }
        for hit in &output.concepts {
            println!(
                "  concept {} (depth {}, score {:.3}, {} evidence span(s))",
                hit.name,
                hit.depth,
                hit.score,
                hit.evidence.len()
            );
        }
        if !output.concepts.is_empty() {
            tagged += 1;
        }
    }
    if tagged == 0 {
        eprintln!("no document produced a concept — the tagging path is dead");
        return std::process::ExitCode::FAILURE;
    }
    println!("\ntagged {tagged} of {} document(s)", docs.len());
    std::process::ExitCode::SUCCESS
}
