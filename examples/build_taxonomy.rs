//! Figure 2 end-to-end: build a full CN-Probase taxonomy and print the
//! construction report (per-source candidates, per-strategy removals,
//! stage timings, final size) plus measured precision against gold.
//!
//! ```sh
//! cargo run --release --example build_taxonomy           # default scale
//! CNP_PAGES=2000 cargo run --release --example build_taxonomy
//! # Also persist the serving snapshot; boot it later with the
//! # serve_from_snapshot example. CNP_SNAPSHOT_FORMAT picks the format:
//! # v3 (default; varint view format, zero-copy boot) or v2 (owned).
//! CNP_SNAPSHOT=/tmp/cnp.snapshot cargo run --release --example build_taxonomy
//! CNP_SNAPSHOT=/tmp/cnp.snapshot CNP_SNAPSHOT_FORMAT=v2 \
//!     cargo run --release --example build_taxonomy
//! ```

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::eval;
use cn_probase::pipeline::{Pipeline, PipelineConfig};

fn main() -> std::process::ExitCode {
    let pages: usize = std::env::var("CNP_PAGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let mut config = CorpusConfig::standard(42);
    config.num_pages = pages;
    println!("generating {pages}-page synthetic encyclopedia …");
    let corpus = CorpusGenerator::new(config).generate();

    println!("running the generation + verification pipeline …\n");
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    print!("{}", outcome.report);

    if let Ok(path) = std::env::var("CNP_SNAPSHOT") {
        let path = std::path::PathBuf::from(path);
        let format = std::env::var("CNP_SNAPSHOT_FORMAT").unwrap_or_else(|_| "v3".to_string());
        let t = std::time::Instant::now();
        let saved = match format.as_str() {
            "v2" => outcome.save_frozen(&path),
            "v3" => outcome.save_view(&path),
            other => {
                eprintln!("unknown CNP_SNAPSHOT_FORMAT {other:?} (expected v2 or v3)");
                return std::process::ExitCode::FAILURE;
            }
        };
        match saved {
            Ok(frozen) => println!(
                "\nwrote {format} snapshot to {} in {:.1?}: {} bytes, \
                 {} entities, {} concepts, {} isA edges",
                path.display(),
                t.elapsed(),
                std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
                frozen.num_entities(),
                frozen.num_concepts(),
                frozen.num_is_a(),
            ),
            Err(e) => {
                eprintln!("failed to write snapshot to {}: {e}", path.display());
                return std::process::ExitCode::FAILURE;
            }
        }
    }

    let est = eval::estimate(&outcome.candidates, &corpus.gold, 2_000, 42);
    println!(
        "\nsampled precision ({} pairs): {:.1}%  (paper: 95.0%)",
        est.sampled,
        est.precision() * 100.0
    );
    for (source, est) in eval::per_source(&outcome.candidates, &corpus.gold) {
        if est.sampled > 0 {
            println!(
                "  {:<10} {:>6} pairs  {:>5.1}%",
                format!("{source:?}"),
                est.sampled,
                est.precision() * 100.0
            );
        }
    }
    std::process::ExitCode::SUCCESS
}
