//! Figure 2 end-to-end: build a full CN-Probase taxonomy and print the
//! construction report (per-source candidates, per-strategy removals,
//! stage timings, final size) plus measured precision against gold.
//!
//! ```sh
//! cargo run --release --example build_taxonomy           # default scale
//! CNP_PAGES=2000 cargo run --release --example build_taxonomy
//! ```

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::eval;
use cn_probase::pipeline::{Pipeline, PipelineConfig};

fn main() {
    let pages: usize = std::env::var("CNP_PAGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let mut config = CorpusConfig::standard(42);
    config.num_pages = pages;
    println!("generating {pages}-page synthetic encyclopedia …");
    let corpus = CorpusGenerator::new(config).generate();

    println!("running the generation + verification pipeline …\n");
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    print!("{}", outcome.report);

    let est = eval::estimate(&outcome.candidates, &corpus.gold, 2_000, 42);
    println!(
        "\nsampled precision ({} pairs): {:.1}%  (paper: 95.0%)",
        est.sampled,
        est.precision() * 100.0
    );
    for (source, est) in eval::per_source(&outcome.candidates, &corpus.gold) {
        if est.sampled > 0 {
            println!(
                "  {:<10} {:>6} pairs  {:>5.1}%",
                format!("{source:?}"),
                est.sampled,
                est.precision() * 100.0
            );
        }
    }
}
