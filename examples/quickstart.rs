//! Quickstart: generate a corpus, build a taxonomy, query the three APIs,
//! and round-trip a binary snapshot.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::pipeline::{Pipeline, PipelineConfig};
use cn_probase::taxonomy::{persist, TaxonomyStats};
use cn_probase::ProbaseApi;

fn main() {
    // 1) A small synthetic Chinese encyclopedia (CN-DBpedia stand-in).
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(2024)).generate();
    println!("generated {} encyclopedia pages", corpus.pages.len());

    // 2) Run the CN-Probase generation + verification pipeline.
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    println!("{}", TaxonomyStats::of(&outcome.taxonomy));

    // 3) Persist the build store, then freeze it for serving: the mutable
    //    store is the write side, the frozen snapshot the read side.
    let path = std::env::temp_dir().join("cn_probase_quickstart.cnpb");
    persist::save_to_file(&outcome.taxonomy, &path).expect("save snapshot");

    // 4) Query the three public APIs of Table II off the frozen snapshot.
    let api = ProbaseApi::new(outcome.taxonomy);
    let page = corpus
        .pages
        .iter()
        .find(|p| !corpus.gold.is_concept(&p.name) && !api.men2ent(&p.name).is_empty())
        .expect("a resolvable entity exists");
    println!("\nmen2ent({}):", page.name);
    for sense in api.men2ent(&page.name) {
        println!(
            "  {} -> getConcept: {:?}",
            sense.key,
            api.get_concept(sense.id, true)
        );
    }
    let concept = api
        .frozen()
        .concept_ids()
        .map(|c| api.frozen().concept_name(c).to_string())
        .find(|c| !api.get_entity(c, true, 3).is_empty())
        .expect("a populated concept exists");
    println!(
        "getEntity({concept}, limit 3): {:?}",
        api.get_entity(&concept, true, 3)
    );

    // 5) Reload the persisted snapshot.
    let reloaded = persist::load_from_file(&path).expect("load snapshot");
    println!(
        "\nsnapshot round-trip: {} bytes, {} isA relations preserved",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        reloaded.num_is_a()
    );
    std::fs::remove_file(&path).ok();
}
