//! Serving API v1, end to end: typed queries, batch execution, cursor
//! pagination and a zero-downtime snapshot hot-swap.
//!
//! Boots a `TaxonomyService` from `CNP_SNAPSHOT` when set (CI runs it
//! against the snapshot the `build_taxonomy` example just wrote),
//! otherwise builds a small taxonomy in-process and boots from a temp
//! snapshot file. Then:
//!
//! 1. executes a Table II-mix batch on the runtime's worker threads,
//! 2. walks a `getEntity` result page by page with a stable cursor,
//! 3. builds a *second* snapshot and hot-swaps it in under the same
//!    service (`reload`), showing the generation bump and the typed
//!    rejection of the now-stale cursor.
//!
//! Exits non-zero on any inconsistency, so CI can use it as a smoke test.
//!
//! ```sh
//! CNP_SNAPSHOT=/tmp/cnp.snapshot cargo run --release --example build_taxonomy
//! CNP_SNAPSHOT=/tmp/cnp.snapshot cargo run --release --example serve_queries
//! ```

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::pipeline::{Pipeline, PipelineConfig};
use cn_probase::serve::CursorError;
use cn_probase::{ListOptions, PageRequest, Query, QueryError, Response, TaxonomyService};
use std::path::PathBuf;
use std::time::Instant;

#[allow(clippy::disallowed_methods)] // diverging demo helper; the examples hold no state worth unwinding
fn fail(msg: &str) -> ! {
    eprintln!("serve_queries: {msg}");
    std::process::exit(1);
}

/// Builds a pipeline snapshot on disk and returns its path.
fn build_snapshot(seed: u64, name: &str) -> PathBuf {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(seed)).generate();
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let path = std::env::temp_dir().join(name);
    outcome
        .save_frozen(&path)
        .unwrap_or_else(|e| fail(&format!("cannot write snapshot: {e}")));
    path
}

fn main() {
    let boot_path = match std::env::var("CNP_SNAPSHOT") {
        Ok(p) if std::path::Path::new(&p).exists() => PathBuf::from(p),
        _ => build_snapshot(21, "cnp_serve_queries_a.cnpb"),
    };
    let t = Instant::now();
    let service = TaxonomyService::from_snapshot_file(&boot_path)
        .unwrap_or_else(|e| fail(&format!("boot from {}: {e}", boot_path.display())));
    let pinned = service.pin();
    let f = pinned.frozen();
    println!(
        "generation {} booted from {} in {:.1?}: {} entities, {} concepts, {} isA edges",
        service.generation(),
        boot_path.display(),
        t.elapsed(),
        f.num_entities(),
        f.num_concepts(),
        f.num_is_a(),
    );

    // ----- 1) batch execution ---------------------------------------------
    let mentions: Vec<String> = f
        .entity_ids()
        .filter(|&e| !f.concepts_of(e).is_empty())
        .take(200)
        .map(|e| f.resolve(f.entity(e).name).to_string())
        .collect();
    let concepts: Vec<String> = f
        .concept_ids()
        .filter(|&c| !f.entities_of(c).is_empty())
        .take(100)
        .map(|c| f.concept_name(c).to_string())
        .collect();
    if mentions.is_empty() || concepts.is_empty() {
        fail("snapshot serves an empty taxonomy");
    }
    let mut batch: Vec<Query> = Vec::new();
    for m in &mentions {
        batch.push(Query::men2ent(m.clone()));
        batch.push(Query::GetConceptByMention {
            mention: m.clone(),
            options: ListOptions::transitive(),
        });
    }
    for c in &concepts {
        batch.push(Query::GetEntity {
            concept: c.clone(),
            options: ListOptions::transitive().with_page(PageRequest::first(10)),
        });
    }
    let t = Instant::now();
    let responses = service.execute_batch(&batch);
    let boot_generation = service.generation();
    println!(
        "batch: {} queries in {:.1?} on {} worker thread(s)",
        batch.len(),
        t.elapsed(),
        service.runtime().threads(),
    );
    if responses.len() != batch.len() {
        fail("batch result count mismatch");
    }
    if responses.iter().any(|r| r.generation != boot_generation) {
        fail("batch answered from more than one generation");
    }
    let errors = responses.iter().filter(|r| r.result.is_err()).count();
    if errors > 0 {
        fail(&format!(
            "{errors} probe queries failed on their own taxonomy"
        ));
    }

    // ----- 2) cursor pagination -------------------------------------------
    let concept = concepts[0].clone();
    let unpaged = match service
        .execute(&Query::GetEntity {
            concept: concept.clone(),
            options: ListOptions::transitive(),
        })
        .result
    {
        Ok(Response::Entities(page)) => page,
        other => fail(&format!("getEntity({concept}): {other:?}")),
    };
    let mut stitched = Vec::new();
    let mut cursor = None;
    let mut pages = 0;
    loop {
        let page = match service
            .execute(&Query::GetEntity {
                concept: concept.clone(),
                options: ListOptions::transitive().with_page(PageRequest { limit: 3, cursor }),
            })
            .result
        {
            Ok(Response::Entities(page)) => page,
            other => fail(&format!("page {pages}: {other:?}")),
        };
        stitched.extend(page.items);
        pages += 1;
        match page.next {
            Some(next) => cursor = Some(next),
            None => break,
        }
    }
    if stitched != unpaged.items {
        fail("stitched pages diverge from the unpaged result");
    }
    println!(
        "pagination: getEntity({concept}) -> {} hyponyms over {pages} page(s) of 3, stitched == unpaged",
        unpaged.total,
    );
    let stale_cursor = match service
        .execute(&Query::GetEntity {
            concept: concept.clone(),
            options: ListOptions::transitive().with_page(PageRequest::first(1)),
        })
        .result
    {
        Ok(Response::Entities(page)) => page.next,
        other => fail(&format!("first page: {other:?}")),
    };

    // ----- 3) zero-downtime hot-swap --------------------------------------
    println!("building generation {}'s snapshot …", boot_generation + 1);
    let next_path = build_snapshot(33, "cnp_serve_queries_b.cnpb");
    let t = Instant::now();
    let new_generation = service
        .reload(&next_path)
        .unwrap_or_else(|e| fail(&format!("reload: {e}")));
    println!(
        "hot-swap: reload({}) -> generation {new_generation} in {:.1?}",
        next_path.display(),
        t.elapsed(),
    );
    if new_generation != boot_generation + 1 {
        fail("generation did not bump by one");
    }
    // The pin taken before the swap still answers from the boot snapshot.
    let old = pinned.execute(&Query::men2ent(mentions[0].clone()));
    if old.generation != boot_generation {
        fail("pinned snapshot migrated generations");
    }
    // A cursor minted before the swap is rejected with a typed error.
    if let Some(stale) = stale_cursor {
        match service
            .execute(&Query::GetEntity {
                concept: concept.clone(),
                options: ListOptions::transitive().with_page(PageRequest::after(1, stale)),
            })
            .result
        {
            Err(QueryError::InvalidCursor(CursorError::WrongGeneration { cursor, serving })) => {
                println!("stale cursor: rejected (minted on {cursor}, serving {serving})");
            }
            // The new snapshot may not even contain the old concept — an
            // equally typed refusal, reported before cursor validation.
            Err(QueryError::UnknownConcept(c)) => {
                println!("stale cursor: concept {c:?} gone from the new generation");
            }
            other => fail(&format!("stale cursor accepted: {other:?}")),
        }
    }
    // New traffic is answered from the new generation.
    let fresh = service.execute(&Query::GetEntity {
        concept: concept.clone(),
        options: ListOptions::transitive().with_page(PageRequest::first(3)),
    });
    if fresh.generation != new_generation {
        fail("fresh query not on the new generation");
    }
    println!("serving API v1 smoke: OK");
}
