//! §IV-B: the QA coverage experiment.
//!
//! Builds a taxonomy, generates an NLPCC-2016-style question set, and
//! reports coverage plus concepts-per-entity (paper: 91.68% and 2.14), with
//! sample covered/uncovered questions.
//!
//! ```sh
//! cargo run --release --example qa_coverage
//! ```

use cn_probase::encyclopedia::{CorpusConfig, CorpusGenerator};
use cn_probase::eval::{coverage, generate_questions};
use cn_probase::pipeline::{Pipeline, PipelineConfig};
use cn_probase::ProbaseApi;

fn main() {
    let corpus = CorpusGenerator::new(CorpusConfig::tiny(7)).generate();
    let outcome = Pipeline::new(PipelineConfig::fast()).run(&corpus);
    let api = ProbaseApi::new(outcome.taxonomy);

    let questions = generate_questions(&corpus, 2_000, 7);
    let result = coverage(&api, &questions);

    println!("questions:               {}", result.questions);
    println!("covered:                 {}", result.covered);
    println!(
        "coverage:                {:.2}%   (paper: 91.68%)",
        result.coverage() * 100.0
    );
    println!(
        "avg concepts per entity: {:.2}    (paper: 2.14)",
        result.avg_concepts_per_entity
    );

    println!("\nsample questions:");
    for q in questions.iter().take(8) {
        let covered = coverage(&api, std::slice::from_ref(q)).covered == 1;
        println!(
            "  [{}] {}",
            if covered { "covered " } else { "uncovered" },
            q.text
        );
    }
}
