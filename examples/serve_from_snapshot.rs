//! Boot the Table II serving path straight from a snapshot file.
//!
//! This is the production boot sequence: no pipeline, no freeze — load
//! whatever snapshot format the file holds (v3 serves zero-copy from the
//! loaded buffer; v1/v2 materialise the owned snapshot) and start
//! answering `men2ent` / `getConcept` / `getEntity` immediately.
//!
//! ```sh
//! CNP_SNAPSHOT=/tmp/cnp.snapshot cargo run --release --example build_taxonomy
//! CNP_SNAPSHOT=/tmp/cnp.snapshot cargo run --release --example serve_from_snapshot
//! ```
//!
//! Exits non-zero when the snapshot fails to load or serves an empty
//! taxonomy, so CI can use it as a round-trip smoke check.

use cn_probase::taxonomy::{AnySnapshot, EntityId, TaxonomyRead};
use cn_probase::{ProbaseApi, TaxonomyService};
use std::path::Path;
use std::time::Instant;

fn main() -> std::process::ExitCode {
    let path = std::env::var("CNP_SNAPSHOT").unwrap_or_else(|_| "/tmp/cnp.snapshot".to_string());
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let t = Instant::now();
    let service = match TaxonomyService::<AnySnapshot>::boot_from_file(Path::new(&path)) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("failed to boot from snapshot {path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let boot = t.elapsed();
    let api = ProbaseApi::from_service(service);
    let f = api.frozen();
    println!(
        "booted from {path} ({bytes} bytes, {} mode) in {boot:.1?}: \
         {} entities, {} concepts, {} isA edges, {} mentions",
        f.mode(),
        f.num_entities(),
        f.num_concepts(),
        f.num_is_a(),
        f.num_mentions(),
    );
    if f.num_is_a() == 0 {
        eprintln!("snapshot serves an empty taxonomy");
        return std::process::ExitCode::FAILURE;
    }

    // Answer a few queries straight off the loaded snapshot, using its own
    // entity table as the query stream.
    let mut shown = 0;
    for e in (0..f.num_entities() as u32).map(EntityId) {
        if f.concepts_of(e).next().is_none() {
            continue;
        }
        let mention = f.resolve(f.entity(e).name).to_string();
        let senses = api.men2ent(&mention);
        let concepts = api.get_concept(e, true);
        println!(
            "men2ent({mention}) -> {} sense(s); getConcept(transitive) -> {}",
            senses.len(),
            concepts.join("、"),
        );
        if let Some(first) = concepts.first() {
            let hyponyms = api.get_entity(first, true, 5);
            println!("  getEntity({first}, ≤5) -> {}", hyponyms.join("、"));
        }
        shown += 1;
        if shown == 3 {
            break;
        }
    }
    if shown == 0 {
        eprintln!("no linked entity found in the snapshot");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
