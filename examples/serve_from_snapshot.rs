//! Boot the Table II serving path straight from a snapshot file.
//!
//! This is the production boot sequence: no pipeline, no freeze — load a
//! v2 snapshot (validate-and-go) or a v1 store snapshot (load, then one
//! freeze) through `ProbaseApi::from_snapshot_file` and start answering
//! `men2ent` / `getConcept` / `getEntity` immediately.
//!
//! ```sh
//! CNP_SNAPSHOT=/tmp/cnp.snapshot cargo run --release --example build_taxonomy
//! CNP_SNAPSHOT=/tmp/cnp.snapshot cargo run --release --example serve_from_snapshot
//! ```
//!
//! Exits non-zero when the snapshot fails to load or serves an empty
//! taxonomy, so CI can use it as a round-trip smoke check.

use cn_probase::ProbaseApi;
use std::path::Path;
use std::time::Instant;

fn main() -> std::process::ExitCode {
    let path = std::env::var("CNP_SNAPSHOT").unwrap_or_else(|_| "/tmp/cnp.snapshot".to_string());
    let t = Instant::now();
    let api = match ProbaseApi::from_snapshot_file(Path::new(&path)) {
        Ok(api) => api,
        Err(e) => {
            eprintln!("failed to boot from snapshot {path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let boot = t.elapsed();
    let f = api.frozen();
    println!(
        "booted from {path} in {boot:.1?}: {} entities, {} concepts, {} isA edges, {} mentions",
        f.num_entities(),
        f.num_concepts(),
        f.num_is_a(),
        f.num_mentions(),
    );
    if f.num_is_a() == 0 {
        eprintln!("snapshot serves an empty taxonomy");
        return std::process::ExitCode::FAILURE;
    }

    // Answer a few queries straight off the loaded snapshot, using its own
    // entity table as the query stream.
    let mut shown = 0;
    for e in f.entity_ids() {
        if f.concepts_of(e).is_empty() {
            continue;
        }
        let mention = f.resolve(f.entity(e).name).to_string();
        let senses = api.men2ent(&mention);
        let concepts = api.get_concept(e, true);
        println!(
            "men2ent({mention}) -> {} sense(s); getConcept(transitive) -> {}",
            senses.len(),
            concepts.join("、"),
        );
        if let Some(first) = concepts.first() {
            let hyponyms = api.get_entity(first, true, 5);
            println!("  getEntity({first}, ≤5) -> {}", hyponyms.join("、"));
        }
        shown += 1;
        if shown == 3 {
            break;
        }
    }
    if shown == 0 {
        eprintln!("no linked entity found in the snapshot");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
